package edgesim

import (
	"math"
	"testing"
	"time"

	"lcrs/internal/netsim"
)

func baseWorkload() Workload {
	return Workload{
		Clients:         10,
		RequestRate:     1,
		OffloadFraction: 1,
		ServiceTime:     20 * time.Millisecond,
		Duration:        60 * time.Second,
		Seed:            1,
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*Workload){
		func(w *Workload) { w.Clients = 0 },
		func(w *Workload) { w.RequestRate = 0 },
		func(w *Workload) { w.OffloadFraction = -0.1 },
		func(w *Workload) { w.OffloadFraction = 1.1 },
		func(w *Workload) { w.ServiceTime = 0 },
		func(w *Workload) { w.Duration = 0 },
		func(w *Workload) { w.BatchWait = -time.Millisecond },
		func(w *Workload) { w.SetupTime = -time.Millisecond },
	}
	for i, mutate := range bad {
		w := baseWorkload()
		mutate(&w)
		if _, err := Run(w); err == nil {
			t.Errorf("case %d: invalid workload accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(baseWorkload())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed produced different results: %+v vs %+v", a, b)
	}
}

func TestZeroOffloadServesNothing(t *testing.T) {
	w := baseWorkload()
	w.OffloadFraction = 0
	res, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 0 || res.Utilization != 0 {
		t.Fatalf("zero offload must idle the server: %+v", res)
	}
}

func TestThroughputMatchesArrivalRate(t *testing.T) {
	w := baseWorkload() // offered load 10*1*0.02 = 0.2, stable
	res, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	// About Clients * rate * duration arrivals.
	want := float64(w.Clients) * w.RequestRate * w.Duration.Seconds()
	if math.Abs(float64(res.Served)-want)/want > 0.15 {
		t.Fatalf("served %d, want about %.0f", res.Served, want)
	}
	if math.Abs(res.OfferedLoad-0.2) > 1e-9 {
		t.Fatalf("offered load %v, want 0.2", res.OfferedLoad)
	}
	if math.Abs(res.Utilization-0.2) > 0.05 {
		t.Fatalf("utilization %v, want about 0.2", res.Utilization)
	}
}

// M/D/1 sanity: for offered load rho, mean wait = rho*s / (2(1-rho)).
func TestMeanWaitNearMD1(t *testing.T) {
	w := baseWorkload()
	w.Clients = 25 // rho = 0.5
	res, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	rho := res.OfferedLoad
	s := w.ServiceTime.Seconds()
	want := rho * s / (2 * (1 - rho))
	got := res.MeanWait.Seconds()
	if math.Abs(got-want)/want > 0.35 {
		t.Fatalf("mean wait %.4fs, M/D/1 predicts %.4fs", got, want)
	}
}

// The motivating claim: LCRS's offload fraction keeps the edge stable where
// edge-only saturates.
func TestLCRSKeepsServerStableUnderLoadWhereEdgeOnlySaturates(t *testing.T) {
	edgeOnly := baseWorkload()
	edgeOnly.Clients = 60 // offered load 1.2: unstable
	lcrs := edgeOnly
	lcrs.OffloadFraction = 0.2 // 80% exit at the binary branch

	eo, err := Run(edgeOnly)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := Run(lcrs)
	if err != nil {
		t.Fatal(err)
	}
	if eo.OfferedLoad <= 1 {
		t.Fatalf("edge-only offered load %v should exceed 1", eo.OfferedLoad)
	}
	if lc.OfferedLoad >= 0.5 {
		t.Fatalf("lcrs offered load %v should be far below 1", lc.OfferedLoad)
	}
	if lc.P95Wait >= eo.P95Wait/10 {
		t.Fatalf("lcrs p95 wait %v not dramatically below edge-only %v", lc.P95Wait, eo.P95Wait)
	}
	if eo.MeanWait < 500*time.Millisecond {
		t.Fatalf("saturated edge-only mean wait %v implausibly low", eo.MeanWait)
	}
}

func TestWaitGrowsWithLoad(t *testing.T) {
	var prev time.Duration
	for i, clients := range []int{10, 30, 45} {
		w := baseWorkload()
		w.Clients = clients
		res, err := Run(w)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.MeanWait <= prev {
			t.Fatalf("mean wait did not grow with load: %v after %v", res.MeanWait, prev)
		}
		prev = res.MeanWait
	}
}

// A link profile plus payload size must add exactly the uplink transfer to
// the sojourn (and only the sojourn — the server queue is untouched), so
// smaller offload frames shorten end-to-end latency proportionally.
func TestTransferAddsToSojourn(t *testing.T) {
	bare := baseWorkload()
	noLink, err := Run(bare)
	if err != nil {
		t.Fatal(err)
	}
	if noLink.Transfer != 0 {
		t.Fatalf("transfer without link = %v", noLink.Transfer)
	}

	withLink := bare
	withLink.Link = netsim.PaperFourG()
	withLink.PayloadBytes = 96 << 10
	res, err := Run(withLink)
	if err != nil {
		t.Fatal(err)
	}
	wantTransfer := withLink.Link.UpTime(withLink.PayloadBytes)
	if res.Transfer != wantTransfer {
		t.Fatalf("transfer %v, want %v", res.Transfer, wantTransfer)
	}
	if res.MeanSojourn != noLink.MeanSojourn+wantTransfer {
		t.Fatalf("sojourn %v, want %v + %v", res.MeanSojourn, noLink.MeanSojourn, wantTransfer)
	}
	if res.MeanWait != noLink.MeanWait {
		t.Fatalf("queue wait changed with link: %v vs %v", res.MeanWait, noLink.MeanWait)
	}

	// A quarter-size frame (q8 vs raw) shrinks the sojourn.
	smaller := withLink
	smaller.PayloadBytes = withLink.PayloadBytes / 4
	small, err := Run(smaller)
	if err != nil {
		t.Fatal(err)
	}
	if small.MeanSojourn >= res.MeanSojourn {
		t.Fatalf("smaller payload sojourn %v not below %v", small.MeanSojourn, res.MeanSojourn)
	}
}

// BatchMax 0 and 1 are both "batching off" and must agree exactly with
// each other (the legacy single-request service model).
func TestBatchMaxOneMatchesLegacy(t *testing.T) {
	w := baseWorkload()
	legacy, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchMax = 1
	one, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if legacy != one {
		t.Fatalf("BatchMax=1 diverged from legacy:\n%+v\n%+v", legacy, one)
	}
	if legacy.MeanBatch != 1 || legacy.Batches != legacy.Served {
		t.Fatalf("unbatched run must have batch size 1: %+v", legacy)
	}
}

// When a fixed setup cost makes the unbatched queue unstable, coalescing
// amortizes it and brings the sojourn back down — the win the edge
// batcher is built for.
func TestBatchingAmortizesSetupUnderLoad(t *testing.T) {
	w := baseWorkload()
	w.Clients = 60
	w.ServiceTime = 4 * time.Millisecond
	w.SetupTime = 16 * time.Millisecond // offered load 60*(0.004+0.016) = 1.2
	off, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchMax = 16
	w.BatchWait = 2 * time.Millisecond
	on, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if off.OfferedLoad <= 1 {
		t.Fatalf("unbatched offered load %v should exceed 1", off.OfferedLoad)
	}
	if on.MeanBatch <= 1.5 {
		t.Fatalf("saturated batcher should coalesce, mean batch %v", on.MeanBatch)
	}
	if on.MeanSojourn >= off.MeanSojourn/10 {
		t.Fatalf("batched sojourn %v not dramatically below unbatched %v", on.MeanSojourn, off.MeanSojourn)
	}
	if on.P99Sojourn >= off.P99Sojourn {
		t.Fatalf("batched p99 %v not below unbatched %v", on.P99Sojourn, off.P99Sojourn)
	}
}

// At a trickle, the deadline is pure loss: every lone request waits out
// BatchWait with nobody to share its forward.
func TestBatchWaitCostsIdleTraffic(t *testing.T) {
	w := baseWorkload()
	w.Clients = 1
	w.RequestRate = 0.5 // mean inter-arrival 2s >> wait: batches of one
	w.BatchMax = 8
	w.BatchWait = 10 * time.Millisecond
	res, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanBatch > 1.05 {
		t.Fatalf("trickle traffic should not coalesce, mean batch %v", res.MeanBatch)
	}
	if res.MeanWait < 9*time.Millisecond {
		t.Fatalf("lone requests must pay the deadline, mean wait %v", res.MeanWait)
	}
}

// MeanHold isolates the coalescing delay: zero without batching, the full
// deadline for a trickle of lone requests, and bounded by the deadline in
// general. It is the simulated counterpart of the edge server's
// batch_wait stage histogram, so the two are directly comparable.
func TestMeanHoldTracksCoalescingDelay(t *testing.T) {
	w := baseWorkload()
	unbatched, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if unbatched.MeanHold != 0 {
		t.Fatalf("unbatched run must have zero hold, got %v", unbatched.MeanHold)
	}

	w.Clients = 1
	w.RequestRate = 0.5 // lone requests: every batch waits out the deadline
	w.BatchMax = 8
	w.BatchWait = 10 * time.Millisecond
	trickle, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if trickle.MeanHold < 9*time.Millisecond || trickle.MeanHold > 10*time.Millisecond {
		t.Fatalf("trickle hold %v, want ~BatchWait (10ms)", trickle.MeanHold)
	}
	// The hold is part of the wait, never beyond it.
	if trickle.MeanHold > trickle.MeanWait {
		t.Fatalf("hold %v exceeds wait %v", trickle.MeanHold, trickle.MeanWait)
	}

	// Under saturation batches fill before the deadline, so the mean hold
	// stays below the full wait even though every request is held briefly.
	w = baseWorkload()
	w.Clients = 60
	w.ServiceTime = 4 * time.Millisecond
	w.SetupTime = 16 * time.Millisecond
	w.BatchMax = 16
	w.BatchWait = 2 * time.Millisecond
	loaded, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.MeanHold <= 0 {
		t.Fatalf("batched run under load must hold requests, got %v", loaded.MeanHold)
	}
	if loaded.MeanHold > w.BatchWait {
		t.Fatalf("hold %v exceeds the %v deadline", loaded.MeanHold, w.BatchWait)
	}
}
