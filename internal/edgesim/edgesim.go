// Package edgesim is a discrete-event simulator for an edge server shared
// by many concurrent Web AR clients. The paper's introduction motivates
// LCRS with exactly this scenario: offloading every recognition to the edge
// ("edge-only") melts the server under concurrency, while LCRS's binary
// branch absorbs most requests on the browsers and ships only the
// low-confidence remainder. The simulator quantifies that: a single-queue
// FIFO server with deterministic per-request service time, Poisson request
// arrivals per client, and seeded randomness for reproducibility.
package edgesim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"lcrs/internal/netsim"
	"lcrs/internal/tensor"
)

// Workload describes one simulated scenario.
type Workload struct {
	// Clients is the number of concurrent AR sessions.
	Clients int
	// RequestRate is each client's recognition attempts per second.
	RequestRate float64
	// OffloadFraction is the share of attempts that reach the edge
	// (1 for edge-only; 1-exitRate for LCRS).
	OffloadFraction float64
	// ServiceTime is the server compute per offloaded request.
	ServiceTime time.Duration
	// Link and PayloadBytes, when both set, model the uplink: each
	// offloaded request pays the transfer of PayloadBytes over Link before
	// it can queue, so sojourn reflects the wire codec's frame size (the
	// transfer occupies the client's radio, not the server, so it does not
	// add to server busy time).
	Link *netsim.Link
	// PayloadBytes is the encoded offload frame size per request.
	PayloadBytes int64
	// Duration is the simulated wall-clock span.
	Duration time.Duration
	// Seed drives arrival randomness.
	Seed int64
}

// TransferTime returns the per-request uplink cost of the workload: zero
// without a link profile, otherwise PayloadBytes over the link's uplink.
func (w Workload) TransferTime() time.Duration {
	if w.Link == nil || w.PayloadBytes <= 0 {
		return 0
	}
	return w.Link.UpTime(w.PayloadBytes)
}

// Validate reports nonsensical workloads.
func (w Workload) Validate() error {
	if w.Clients <= 0 {
		return fmt.Errorf("edgesim: clients must be positive, got %d", w.Clients)
	}
	if w.RequestRate <= 0 {
		return fmt.Errorf("edgesim: request rate must be positive, got %v", w.RequestRate)
	}
	if w.OffloadFraction < 0 || w.OffloadFraction > 1 {
		return fmt.Errorf("edgesim: offload fraction %v out of [0,1]", w.OffloadFraction)
	}
	if w.ServiceTime <= 0 {
		return fmt.Errorf("edgesim: service time must be positive, got %v", w.ServiceTime)
	}
	if w.Duration <= 0 {
		return fmt.Errorf("edgesim: duration must be positive, got %v", w.Duration)
	}
	return nil
}

// Result summarizes a simulated run.
type Result struct {
	// Served is the number of requests that completed.
	Served int
	// Utilization is the busy fraction of the server.
	Utilization float64
	// MeanWait and P95Wait are queueing delays (excluding service).
	MeanWait, P95Wait time.Duration
	// Transfer is the per-request uplink transfer time (zero when the
	// workload has no link profile).
	Transfer time.Duration
	// MeanSojourn is uplink transfer plus queueing plus service.
	MeanSojourn time.Duration
	// OfferedLoad is arrival rate x service time — above 1 the queue is
	// unstable and waits grow with the simulated duration.
	OfferedLoad float64
}

// arrivalHeap orders event times.
type arrivalHeap []float64

func (h arrivalHeap) Len() int           { return len(h) }
func (h arrivalHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h arrivalHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *arrivalHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Run simulates the workload and returns aggregate statistics.
func Run(w Workload) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	g := tensor.NewRNG(w.Seed)
	horizon := w.Duration.Seconds()
	lambda := w.RequestRate * w.OffloadFraction // per client, offloaded only

	// Generate each client's Poisson arrivals into one time-ordered heap.
	h := &arrivalHeap{}
	if lambda > 0 {
		for c := 0; c < w.Clients; c++ {
			t := 0.0
			for {
				t += expSample(g, lambda)
				if t > horizon {
					break
				}
				heap.Push(h, t)
			}
		}
	}

	service := w.ServiceTime.Seconds()
	var busyUntil, busyTotal float64
	var waits []float64
	for h.Len() > 0 {
		at := heap.Pop(h).(float64)
		start := math.Max(at, busyUntil)
		waits = append(waits, start-at)
		busyUntil = start + service
		busyTotal += service
	}

	res := Result{
		Served:      len(waits),
		OfferedLoad: float64(w.Clients) * lambda * service,
	}
	if len(waits) == 0 {
		return res, nil
	}
	span := math.Max(horizon, busyUntil)
	res.Utilization = busyTotal / span
	sort.Float64s(waits)
	var sum float64
	for _, v := range waits {
		sum += v
	}
	mean := sum / float64(len(waits))
	res.MeanWait = time.Duration(mean * float64(time.Second))
	res.P95Wait = time.Duration(waits[(len(waits)*95)/100] * float64(time.Second))
	res.Transfer = w.TransferTime()
	res.MeanSojourn = res.Transfer + res.MeanWait + w.ServiceTime
	return res, nil
}

// expSample draws an exponential inter-arrival time with rate lambda.
func expSample(g *tensor.RNG, lambda float64) float64 {
	u := g.Float64()
	for u == 0 {
		u = g.Float64()
	}
	return -math.Log(u) / lambda
}
