// Package edgesim is a discrete-event simulator for an edge server shared
// by many concurrent Web AR clients. The paper's introduction motivates
// LCRS with exactly this scenario: offloading every recognition to the edge
// ("edge-only") melts the server under concurrency, while LCRS's binary
// branch absorbs most requests on the browsers and ships only the
// low-confidence remainder. The simulator quantifies that: a single-queue
// FIFO server with deterministic per-request service time, Poisson request
// arrivals per client, and seeded randomness for reproducibility.
package edgesim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"lcrs/internal/netsim"
	"lcrs/internal/tensor"
)

// Workload describes one simulated scenario.
type Workload struct {
	// Clients is the number of concurrent AR sessions.
	Clients int
	// RequestRate is each client's recognition attempts per second.
	RequestRate float64
	// OffloadFraction is the share of attempts that reach the edge
	// (1 for edge-only; 1-exitRate for LCRS).
	OffloadFraction float64
	// ServiceTime is the server compute per offloaded request.
	ServiceTime time.Duration
	// Link and PayloadBytes, when both set, model the uplink: each
	// offloaded request pays the transfer of PayloadBytes over Link before
	// it can queue, so sojourn reflects the wire codec's frame size (the
	// transfer occupies the client's radio, not the server, so it does not
	// add to server busy time).
	Link *netsim.Link
	// PayloadBytes is the encoded offload frame size per request.
	PayloadBytes int64
	// Duration is the simulated wall-clock span.
	Duration time.Duration
	// Seed drives arrival randomness.
	Seed int64

	// Micro-batching knobs, mirroring the edge server's batcher
	// (internal/edge): when BatchMax > 1 the server serves up to BatchMax
	// queued requests with one forward of cost SetupTime + n*ServiceTime,
	// and a non-full batch waits up to BatchWait for stragglers before
	// firing. BatchMax <= 1 keeps the classic one-request-per-service
	// model, where each request costs SetupTime + ServiceTime.
	BatchMax int
	// BatchWait is the coalescing deadline armed by a batch's first
	// request while the batch is below BatchMax.
	BatchWait time.Duration
	// SetupTime is the fixed per-forward cost (im2col/GEMM setup, scratch
	// sweeps, fork/join) that batching amortizes across the batch;
	// ServiceTime stays the per-sample marginal cost.
	SetupTime time.Duration

	// CacheHitRatio is the share of offloaded requests answered from the
	// edge's content-addressed answer cache (edge.WithAnswerCache): hits
	// bypass the service station entirely — they pay the uplink transfer
	// but neither queue nor occupy the server — modeling the streaming AR
	// regime where many identical quantized frames arrive. 0 (the default)
	// disables the cache; hits are classified with randomness isolated
	// from arrival generation, so two workloads differing only in this
	// field see the same arrival process.
	CacheHitRatio float64
}

// TransferTime returns the per-request uplink cost of the workload: zero
// without a link profile, otherwise PayloadBytes over the link's uplink.
func (w Workload) TransferTime() time.Duration {
	if w.Link == nil || w.PayloadBytes <= 0 {
		return 0
	}
	return w.Link.UpTime(w.PayloadBytes)
}

// Validate reports nonsensical workloads.
func (w Workload) Validate() error {
	if w.Clients <= 0 {
		return fmt.Errorf("edgesim: clients must be positive, got %d", w.Clients)
	}
	if w.RequestRate <= 0 {
		return fmt.Errorf("edgesim: request rate must be positive, got %v", w.RequestRate)
	}
	if w.OffloadFraction < 0 || w.OffloadFraction > 1 {
		return fmt.Errorf("edgesim: offload fraction %v out of [0,1]", w.OffloadFraction)
	}
	if w.ServiceTime <= 0 {
		return fmt.Errorf("edgesim: service time must be positive, got %v", w.ServiceTime)
	}
	if w.Duration <= 0 {
		return fmt.Errorf("edgesim: duration must be positive, got %v", w.Duration)
	}
	if w.BatchWait < 0 {
		return fmt.Errorf("edgesim: batch wait must be non-negative, got %v", w.BatchWait)
	}
	if w.SetupTime < 0 {
		return fmt.Errorf("edgesim: setup time must be non-negative, got %v", w.SetupTime)
	}
	if w.CacheHitRatio < 0 || w.CacheHitRatio > 1 {
		return fmt.Errorf("edgesim: cache hit ratio %v out of [0,1]", w.CacheHitRatio)
	}
	return nil
}

// Result summarizes a simulated run.
type Result struct {
	// Served is the number of requests that completed.
	Served int
	// Utilization is the busy fraction of the server.
	Utilization float64
	// MeanWait and P95Wait are queueing delays (excluding service), with
	// any batching deadline hold included.
	MeanWait, P95Wait time.Duration
	// Transfer is the per-request uplink transfer time (zero when the
	// workload has no link profile).
	Transfer time.Duration
	// MeanSojourn is uplink transfer plus queueing plus service.
	MeanSojourn time.Duration
	// P50Sojourn and P99Sojourn are per-request end-to-end percentiles
	// (transfer + queueing + service), the distribution the batching
	// bench compares against measured HTTP latencies.
	P50Sojourn, P99Sojourn time.Duration
	// OfferedLoad is arrival rate x unbatched service time (setup + per
	// sample) — above 1 the unbatched queue is unstable; batching can
	// hold an offered load above 1 stable by amortizing the setup.
	OfferedLoad float64
	// CacheHits is the number of served requests answered by the simulated
	// answer cache: they pay the transfer but never touch the server.
	CacheHits int
	// Batches is the number of server forwards; MeanBatch is the average
	// number of requests they coalesced (1 with batching off).
	Batches int
	// MeanBatch is (Served - CacheHits) / Batches: hits never reach a
	// forward, so they do not dilute the coalescing average.
	MeanBatch float64
	// MeanHold is the mean coalescing hold per request: time spent parked
	// for batch peers or the deadline, before the server could have taken
	// the request anyway. Zero with batching off. This is the simulated
	// counterpart of the edge server's batch_wait stage histogram (the
	// stage="batch_wait" series of lcrs_edge_stage_seconds), so simulated
	// and measured batching policies can be cross-checked directly.
	MeanHold time.Duration
}

// arrivalHeap orders event times.
type arrivalHeap []float64

func (h arrivalHeap) Len() int           { return len(h) }
func (h arrivalHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h arrivalHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *arrivalHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Run simulates the workload and returns aggregate statistics.
func Run(w Workload) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	g := tensor.NewRNG(w.Seed)
	horizon := w.Duration.Seconds()
	lambda := w.RequestRate * w.OffloadFraction // per client, offloaded only

	// Generate each client's Poisson arrivals into one time-ordered heap.
	h := &arrivalHeap{}
	if lambda > 0 {
		for c := 0; c < w.Clients; c++ {
			t := 0.0
			for {
				t += expSample(g, lambda)
				if t > horizon {
					break
				}
				heap.Push(h, t)
			}
		}
	}

	arrivals := make([]float64, 0, h.Len())
	for h.Len() > 0 {
		arrivals = append(arrivals, heap.Pop(h).(float64))
	}

	// Cache hits bypass the service station: they pay the transfer but
	// neither queue nor occupy the server. Classification draws from a
	// split RNG, and only when the ratio is positive, so arrivals are
	// identical across workloads that differ only in the hit ratio — and a
	// zero-ratio run consumes exactly the pre-cache random stream (the
	// exact-reduction contract the tests pin).
	hits := 0
	if w.CacheHitRatio > 0 {
		hg := g.Split()
		miss := arrivals[:0]
		for _, at := range arrivals {
			if hg.Float64() < w.CacheHitRatio {
				hits++
			} else {
				miss = append(miss, at)
			}
		}
		arrivals = miss
	}

	service := w.ServiceTime.Seconds()
	setup := w.SetupTime.Seconds()
	batchMax := w.BatchMax
	if batchMax < 1 {
		batchMax = 1
	}
	bwait := w.BatchWait.Seconds()

	// Single-server FIFO with server-side coalescing, mirroring the edge
	// batcher: a forward serves up to batchMax queued requests at cost
	// setup + n*service; a non-full batch holds for the deadline so late
	// stragglers can amortize the setup, firing early the moment it fills.
	// With batchMax = 1 this reduces exactly to the classic per-request
	// model (and to the pre-batching accounting when setup is zero).
	var busyUntil, busyTotal, holdTotal float64
	var waits, sojourns []float64
	batches := 0
	i := 0
	for i < len(arrivals) {
		// The window opens when the head request could be served: its
		// arrival, or when the server frees. Everything already queued by
		// then joins, up to the cap.
		open := math.Max(arrivals[i], busyUntil)
		j := i + 1
		for j < len(arrivals) && j-i < batchMax && arrivals[j] <= open {
			j++
		}
		start := open
		if j-i < batchMax && bwait > 0 {
			deadline := open + bwait
			start = deadline
			for j < len(arrivals) && j-i < batchMax && arrivals[j] <= deadline {
				j++
			}
			if j-i == batchMax {
				// Filled before the deadline: fire on the closing arrival.
				start = arrivals[j-1]
			}
		}
		busy := setup + float64(j-i)*service
		finish := start + busy
		busyTotal += busy
		busyUntil = finish
		batches++
		for ; i < j; i++ {
			waits = append(waits, start-arrivals[i])
			sojourns = append(sojourns, finish-arrivals[i])
			// The coalescing hold: the request was takeable at its arrival
			// or the window opening, whichever came later, but the batch
			// fired at start. The edge batcher measures the same quantity
			// as queueStart - parked.
			holdTotal += start - math.Max(arrivals[i], open)
		}
	}

	// Hits are served requests with zero wait and zero server sojourn;
	// their transfer cost rides in with everyone else's below.
	for k := 0; k < hits; k++ {
		waits = append(waits, 0)
		sojourns = append(sojourns, 0)
	}

	res := Result{
		Served:      len(waits),
		CacheHits:   hits,
		OfferedLoad: float64(w.Clients) * lambda * (setup + service) * (1 - w.CacheHitRatio),
		Batches:     batches,
	}
	if len(waits) == 0 {
		return res, nil
	}
	if batches > 0 {
		res.MeanBatch = float64(res.Served-hits) / float64(batches)
	}
	span := math.Max(horizon, busyUntil)
	res.Utilization = busyTotal / span
	sort.Float64s(waits)
	sort.Float64s(sojourns)
	mean := func(vs []float64) float64 {
		var sum float64
		for _, v := range vs {
			sum += v
		}
		return sum / float64(len(vs))
	}
	dur := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	res.MeanWait = dur(mean(waits))
	res.P95Wait = dur(waits[(len(waits)*95)/100])
	res.MeanHold = dur(holdTotal / float64(res.Served))
	res.Transfer = w.TransferTime()
	res.MeanSojourn = res.Transfer + dur(mean(sojourns))
	res.P50Sojourn = res.Transfer + dur(sojourns[len(sojourns)/2])
	res.P99Sojourn = res.Transfer + dur(sojourns[(len(sojourns)*99)/100])
	return res, nil
}

// expSample draws an exponential inter-arrival time with rate lambda.
func expSample(g *tensor.RNG, lambda float64) float64 {
	u := g.Float64()
	for u == 0 {
		u = g.Float64()
	}
	return -math.Log(u) / lambda
}
