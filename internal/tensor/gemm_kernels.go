package tensor

// Portable microkernel implementations. The GEMM and fused-conv drivers
// call kern4x8 / kern1x8 (dispatched per GOARCH in gemm_kernels_amd64.go /
// gemm_kernels_other.go); these pure-Go bodies are the reference semantics
// and the fallback for non-amd64 builds or CPUs without AVX.
//
// Panel layout (shared with the AVX kernels and the pack routines): one
// sliver holds gemmNR consecutive output columns interleaved by depth —
// element (kk, lane) lives at bp[kk*gemmNR+lane] — so a single vector load
// reads one depth step of all gemmNR columns.
//
// Determinism: lane j of accumulator row r is the single ascending-k chain
// acc[r][j] += a_r[kk] * bp[kk*8+j]. AVX vmulps/vaddps round each lane
// exactly like scalar mulss/addss, so the asm and Go kernels are bitwise
// interchangeable (pinned by TestKernelAsmMatchesGo).

// kern4x8go accumulates a 4-row x 8-column tile into acc from zero:
// acc[r][j] = sum_kk a_r[kk] * bp[kk*8+j], ascending kk.
func kern4x8go(a0, a1, a2, a3, bp []float32, acc *[4][8]float32) {
	var t [4][8]float32
	bp = bp[: len(a0)*8 : len(a0)*8]
	for kk, av0 := range a0 {
		av1, av2, av3 := a1[kk], a2[kk], a3[kk]
		bb := bp[kk*8:][:8]
		for j, bv := range bb {
			t[0][j] += av0 * bv
			t[1][j] += av1 * bv
			t[2][j] += av2 * bv
			t[3][j] += av3 * bv
		}
	}
	*acc = t
}

// kern1x8go is the single-row remainder kernel with the same per-lane
// chains.
func kern1x8go(a0, bp []float32, acc *[8]float32) {
	var t [8]float32
	bp = bp[: len(a0)*8 : len(a0)*8]
	for kk, av := range a0 {
		bb := bp[kk*8:][:8]
		for j, bv := range bb {
			t[j] += av * bv
		}
	}
	*acc = t
}
