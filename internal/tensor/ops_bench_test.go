package tensor

import (
	"fmt"
	"testing"
)

// gemmBenchShapes are the GEMM shapes the rest-of-AlexNet path feeds
// MatMulInto (DESIGN.md §3 architecture, 32x32 inputs): the forward conv
// GEMMs (OutC x K) x (K x P) for conv2..conv5, the conv2 weight-gradient
// GEMM, and a 32-sample fc7 input-gradient GEMM. The two largest shapes —
// conv2 forward and fc7 dX — are the acceptance gates for the blocked
// kernel (EXPERIMENTS.md "Kernel benchmarks").
var gemmBenchShapes = []struct {
	tag     string
	m, k, n int
}{
	{"conv2-fwd", 192, 576, 256},  // conv2 forward: (OutC x K) x (K x P)
	{"conv3-fwd", 384, 1728, 64},  // conv3 forward at 8x8 spatial
	{"conv4-fwd", 256, 3456, 64},  // conv4 forward
	{"conv5-fwd", 256, 2304, 64},  // conv5 forward
	{"conv2-dW", 192, 256, 576},   // conv2 dW: (OutC x P) x (P x K)
	{"conv5-dW", 256, 16, 2304},   // conv5 dW at 4x4 spatial
	{"fc7-dX", 32, 3000, 3000},    // fc7 dX: (N x Out) x (Out x In)
}

// BenchmarkMatMulInto compares the dispatching kernel against the pinned
// unrolled and blocked implementations at every rest-of-AlexNet shape. The
// CI bench smoke runs this with -benchtime=1x so kernel regressions
// surface in the pipeline; throughput is reported as GB/s over m*k*n*4
// bytes (the MAC count in float bytes), the repo's historical GEMM metric.
func BenchmarkMatMulInto(b *testing.B) {
	impls := []struct {
		name string
		fn   func(dst, a, b *Tensor)
	}{
		{"dispatch", MatMulInto},
		{"unrolled", MatMulUnrolledInto},
		{"blocked", MatMulBlockedInto},
	}
	for _, s := range gemmBenchShapes {
		for _, impl := range impls {
			b.Run(fmt.Sprintf("%s-%dx%dx%d/%s", s.tag, s.m, s.k, s.n, impl.name), func(b *testing.B) {
				g := NewRNG(1)
				a := g.Uniform(-1, 1, s.m, s.k)
				bb := g.Uniform(-1, 1, s.k, s.n)
				dst := New(s.m, s.n)
				b.SetBytes(int64(s.m) * int64(s.k) * int64(s.n) * 4)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					impl.fn(dst, a, bb)
				}
			})
		}
	}
}
