package tensor

import (
	"fmt"
	"testing"
)

// BenchmarkMatMulInto exercises the GEMM at the shapes the rest-of-AlexNet
// backward/forward path feeds it (DESIGN.md §3 architecture, 32x32 inputs):
// the conv2 weight-gradient GEMM dOut(192x256) x cols(256x576), the conv5
// one at its 4x4 spatial extent, and a 32-sample fc7 input-gradient GEMM
// dOut(32x3000) x W(3000x3000). The CI bench smoke runs this with
// -benchtime=1x so kernel regressions surface in the pipeline.
func BenchmarkMatMulInto(b *testing.B) {
	shapes := []struct{ m, k, n int }{
		{192, 256, 576},  // alexnet conv2 dW: (OutC x P) x (P x K)
		{256, 16, 2304},  // alexnet conv5 dW at 4x4 spatial
		{32, 3000, 3000}, // alexnet fc7 dX: (N x Out) x (Out x In)
	}
	for _, s := range shapes {
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			g := NewRNG(1)
			a := g.Uniform(-1, 1, s.m, s.k)
			bb := g.Uniform(-1, 1, s.k, s.n)
			dst := New(s.m, s.n)
			b.SetBytes(int64(s.m) * int64(s.k) * int64(s.n) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, a, bb)
			}
		})
	}
}
