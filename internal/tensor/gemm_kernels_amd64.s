#include "textflag.h"

// AVX microkernels over the interleaved sliver panel: element (kk, lane)
// of the packed B sliver lives at bp[kk*8+lane], so one VMOVUPS reads a
// depth step of all 8 output columns. Accumulation uses VMULPS+VADDPS
// (NOT vfmadd): each lane rounds the product and the sum separately,
// exactly like the scalar Go expression `acc += a*b`, keeping asm and
// pure-Go kernels bitwise interchangeable.

// func kern4x8asm(a0, a1, a2, a3, bp *float32, k int, acc *[4][8]float32)
TEXT ·kern4x8asm(SB), NOSPLIT, $0-56
	MOVQ a0+0(FP), R8
	MOVQ a1+8(FP), R9
	MOVQ a2+16(FP), R10
	MOVQ a3+24(FP), R11
	MOVQ bp+32(FP), BX
	MOVQ k+40(FP), CX
	MOVQ acc+48(FP), DI
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	TESTQ CX, CX
	JZ    done4

loop4:
	VMOVUPS      (BX), Y4
	VBROADCASTSS (R8), Y5
	VMULPS       Y4, Y5, Y5
	VADDPS       Y5, Y0, Y0
	VBROADCASTSS (R9), Y6
	VMULPS       Y4, Y6, Y6
	VADDPS       Y6, Y1, Y1
	VBROADCASTSS (R10), Y7
	VMULPS       Y4, Y7, Y7
	VADDPS       Y7, Y2, Y2
	VBROADCASTSS (R11), Y8
	VMULPS       Y4, Y8, Y8
	VADDPS       Y8, Y3, Y3
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	ADDQ $32, BX
	DECQ CX
	JNZ  loop4

done4:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	VZEROUPPER
	RET

// func kern1x8asm(a0, bp *float32, k int, acc *[8]float32)
TEXT ·kern1x8asm(SB), NOSPLIT, $0-32
	MOVQ a0+0(FP), R8
	MOVQ bp+8(FP), BX
	MOVQ k+16(FP), CX
	MOVQ acc+24(FP), DI
	VXORPS Y0, Y0, Y0
	TESTQ CX, CX
	JZ    done1

loop1:
	VMOVUPS      (BX), Y4
	VBROADCASTSS (R8), Y5
	VMULPS       Y4, Y5, Y5
	VADDPS       Y5, Y0, Y0
	ADDQ $4, R8
	ADDQ $32, BX
	DECQ CX
	JNZ  loop1

done1:
	VMOVUPS Y0, (DI)
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
