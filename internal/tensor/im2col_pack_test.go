package tensor

import (
	"math"
	"testing"
)

// unpackPanel reads the sliver-layout panel back into im2col row-major
// order for positions [p0, p0+pLen): out[(p-p0)*k + kk].
func unpackPanel(panel []float32, k, pLen int) []float32 {
	out := make([]float32, pLen*k)
	for q := 0; q < pLen; q++ {
		sv, r := q/gemmNR, q%gemmNR
		for kk := 0; kk < k; kk++ {
			out[q*k+kk] = panel[(sv*k+kk)*gemmNR+r]
		}
	}
	return out
}

func checkPackAgainstIm2Col(t *testing.T, g ConvGeom, seed int64) {
	t.Helper()
	k := g.InC * g.KH * g.KW
	p := g.OutH() * g.OutW()
	rng := NewRNG(seed)
	img := rng.Uniform(-1, 1, g.InC, g.InH, g.InW)
	cols := make([]float32, p*k)
	g.Im2Col(cols, img.Data)
	scale := rng.Uniform(0.1, 2, p)

	// Sweep ragged tile starts and lengths, including tiles whose last
	// sliver is partially past the end of the position range.
	for p0 := 0; p0 < p; p0 += maxInt(1, p/3) {
		for _, pLen := range []int{1, 3, minInt(convNC, p-p0), p - p0} {
			if pLen <= 0 || p0+pLen > p {
				continue
			}
			ns := (pLen + gemmNR - 1) / gemmNR
			panel := make([]float32, k*ns*gemmNR)
			for i := range panel {
				panel[i] = 555 // stale scratch: pack must overwrite every slot
			}
			g.PackColsPanel(panel, img.Data, p0, pLen, nil)
			got := unpackPanel(panel, k, pLen)
			for q := 0; q < pLen; q++ {
				for kk := 0; kk < k; kk++ {
					want := cols[(p0+q)*k+kk]
					if math.Float32bits(got[q*k+kk]) != math.Float32bits(want) {
						t.Fatalf("geom %+v p0=%d pLen=%d: packed value (pos %d, kk %d) = %g, Im2Col has %g",
							g, p0, pLen, p0+q, kk, got[q*k+kk], want)
					}
				}
			}
			// Zero-fill property: pad lanes past pLen must be zero.
			for q := pLen; q < ns*gemmNR; q++ {
				sv, r := q/gemmNR, q%gemmNR
				for kk := 0; kk < k; kk++ {
					if v := panel[(sv*k+kk)*gemmNR+r]; v != 0 {
						t.Fatalf("geom %+v: pad lane (q=%d kk=%d) = %g, want 0", g, q, kk, v)
					}
				}
			}

			// Scale path: packed value is sign(cols)*scale with sign(0)=+1.
			g.PackColsPanel(panel, img.Data, p0, pLen, scale.Data)
			got = unpackPanel(panel, k, pLen)
			for q := 0; q < pLen; q++ {
				sc := scale.Data[p0+q]
				for kk := 0; kk < k; kk++ {
					want := sc
					if cols[(p0+q)*k+kk] < 0 {
						want = -sc
					}
					if math.Float32bits(got[q*k+kk]) != math.Float32bits(want) {
						t.Fatalf("geom %+v: scaled pack (pos %d, kk %d) = %g, want %g",
							g, p0+q, kk, got[q*k+kk], want)
					}
				}
			}
		}
	}
}

func TestPackColsPanelMatchesIm2Col(t *testing.T) {
	geoms := []ConvGeom{
		{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 2},  // rows fully in padding
		{InC: 2, InH: 9, InW: 7, KH: 5, KW: 5, Stride: 2, Pad: 2},  // ragged stride
		{InC: 4, InH: 5, InW: 5, KH: 1, KW: 1, Stride: 1, Pad: 0},  // pointwise
		{InC: 2, InH: 3, InW: 3, KH: 3, KW: 3, Stride: 1, Pad: 0},  // single output position
		{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, Stride: 1, Pad: 1},  // kernel larger than input
		{InC: 3, InH: 16, InW: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}, // > convNC positions
	}
	for i, g := range geoms {
		if err := g.Validate(); err != nil {
			t.Fatalf("test geometry %d invalid: %v", i, err)
		}
		checkPackAgainstIm2Col(t, g, int64(i+1))
	}
}

// FuzzPackColsPanel derives a random-but-valid geometry from the fuzz input
// and checks the packed panel against the materialized Im2Col matrix,
// covering pad/stride edge cases (including kernel rows entirely inside the
// padding band) far beyond the hand-picked table above.
func FuzzPackColsPanel(f *testing.F) {
	f.Add(uint8(3), uint8(8), uint8(8), uint8(3), uint8(3), uint8(1), uint8(1), int64(1))
	f.Add(uint8(1), uint8(2), uint8(3), uint8(4), uint8(1), uint8(2), uint8(3), int64(7))
	f.Add(uint8(2), uint8(12), uint8(5), uint8(5), uint8(5), uint8(3), uint8(4), int64(9))
	f.Fuzz(func(t *testing.T, inC, inH, inW, kh, kw, stride, pad uint8, seed int64) {
		g := ConvGeom{
			InC:    int(inC%4) + 1,
			InH:    int(inH%12) + 1,
			InW:    int(inW%12) + 1,
			KH:     int(kh%5) + 1,
			KW:     int(kw%5) + 1,
			Stride: int(stride%3) + 1,
			Pad:    int(pad % 4),
		}
		if g.Validate() != nil {
			t.Skip()
		}
		checkPackAgainstIm2Col(t, g, seed)
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
