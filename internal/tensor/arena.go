package tensor


// Arena is a bump allocator for per-inference scratch: tensor data, tensor
// headers, shape slices and kernel panel buffers are carved out of three
// reusable slabs. A serving replica owns one arena, calls Reset at the
// start of every request, and runs its whole forward pass out of the slabs
// — after a warm-up forward has sized them, a steady-state request
// performs zero heap allocations (enforced by the allocs/op budget test in
// internal/edge).
//
// Contracts:
//   - NOT safe for concurrent use. One arena per replica, and Reset must
//     only run while no forward on that replica is in flight.
//   - Reset invalidates everything previously returned: slices are handed
//     out again and headers are overwritten. Callers must finish reading a
//     request's outputs (e.g. softmax/argmax over logits) before the next
//     Reset — the edge server extracts results before checking a replica
//     back into its pool for exactly this reason.
//   - Memory is NOT zeroed. New and Floats return buffers holding the
//     previous cycle's values; every consumer must write each element it
//     will read (all eval-mode layers in internal/nn do).
//
// When a cycle demands more than a slab holds, the overflow is served from
// the regular heap and recorded; the next Reset grows the slab to the
// observed high-water mark, so allocation cost is paid once after a shape
// change (the edge warms replicas at registration to front-load this).
type Arena struct {
	floats []float32
	fOff   int
	fNeed  int

	ints []int
	iOff int
	iNeed int

	hdrs  []Tensor
	hOff  int
	hNeed int
}

// NewArena returns an empty arena; the first forward pass (or an explicit
// warm-up) sizes its slabs.
func NewArena() *Arena { return &Arena{} }

// Reset rewinds the arena for the next request, growing any slab whose
// last cycle overflowed to the observed demand.
func (a *Arena) Reset() {
	if a.fNeed > 0 {
		a.floats = make([]float32, a.fOff+a.fNeed)
		a.fNeed = 0
	}
	if a.iNeed > 0 {
		a.ints = make([]int, a.iOff+a.iNeed)
		a.iNeed = 0
	}
	if a.hNeed > 0 {
		a.hdrs = make([]Tensor, a.hOff+a.hNeed)
		a.hNeed = 0
	}
	a.fOff, a.iOff, a.hOff = 0, 0, 0
}

// FootprintBytes returns the total slab capacity in bytes, for diagnostics
// and capacity planning (per-replica steady-state scratch).
func (a *Arena) FootprintBytes() int64 {
	return int64(len(a.floats))*4 + int64(len(a.ints))*8 + int64(len(a.hdrs))*8 // hdr size approximated
}

// Floats returns an n-length scratch slice valid until the next Reset.
// Contents are unspecified; the caller must write every element it reads.
func (a *Arena) Floats(n int) []float32 {
	if a.fOff+n <= len(a.floats) {
		s := a.floats[a.fOff : a.fOff+n : a.fOff+n]
		a.fOff += n
		return s
	}
	a.fNeed += n
	return make([]float32, n)
}

func (a *Arena) intSlice(n int) []int {
	if a.iOff+n <= len(a.ints) {
		s := a.ints[a.iOff : a.iOff+n : a.iOff+n]
		a.iOff += n
		return s
	}
	a.iNeed += n
	return make([]int, n)
}

func (a *Arena) header() *Tensor {
	if a.hOff < len(a.hdrs) {
		t := &a.hdrs[a.hOff]
		a.hOff++
		return t
	}
	a.hNeed++
	return &Tensor{}
}

// arenaShapeLen validates shape and returns its element count. It
// deliberately panics with plain strings — routing shape through
// fmt.Sprintf (as checkShape does) would make the variadic argument escape
// to the heap and cost the zero-alloc hot path one allocation per call.
func arenaShapeLen(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: arena tensor with empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: arena tensor with non-positive dimension")
		}
		n *= d
	}
	return n
}

// New returns an arena-backed tensor of the given shape. Unlike
// tensor.New, the data is NOT zeroed — it recycles a previous cycle's
// bytes — so the caller must write every element it will read.
func (a *Arena) New(shape ...int) *Tensor {
	n := arenaShapeLen(shape)
	t := a.header()
	s := a.intSlice(len(shape))
	copy(s, shape)
	t.Shape = s
	t.Data = a.Floats(n)
	return t
}

// View returns an arena-backed header over t's existing data with a new
// shape (the arena analogue of Reshape without the header allocation).
func (a *Arena) View(t *Tensor, shape ...int) *Tensor {
	n := arenaShapeLen(shape)
	if n != len(t.Data) {
		panic("tensor: Arena.View shape incompatible with tensor size")
	}
	v := a.header()
	s := a.intSlice(len(shape))
	copy(s, shape)
	v.Shape = s
	v.Data = t.Data
	return v
}
