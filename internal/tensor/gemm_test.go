package tensor

import (
	"fmt"
	"math"
	"testing"
)

// matMulBlockedRef is a plain scalar implementation of the blocked kernel's
// accumulation order: for each KC block in ascending order, one ascending-k
// chain into a local register, then one += into C. The production kernel
// must match it bitwise — this is the cross-impl equivalence rail the
// tiling optimizations are pinned against.
func matMulBlockedRef(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var c float32
			for kc := 0; kc < k; kc += gemmKC {
				kcLen := min(gemmKC, k-kc)
				var acc float32
				for kk := 0; kk < kcLen; kk++ {
					acc += a.Data[i*k+kc+kk] * b.Data[(kc+kk)*n+j]
				}
				c += acc
			}
			dst.Data[i*n+j] = c
		}
	}
}

// transBRef is the historical serial MatMulTransB loop, kept verbatim as
// the bitwise reference for the register-tiled TransBRange.
func transBRef(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	c := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float32
			for kk, av := range arow {
				s += av * brow[kk]
			}
			crow[j] = s
		}
	}
	return c
}

var gemmShapes = []struct{ m, k, n int }{
	{4, 4, 4},
	{5, 3, 7},       // remainder rows and a ragged sliver
	{1, 129, 1},     // single row/column, k just past a 4-multiple
	{7, 300, 9},     // k spans two KC blocks
	{64, 576, 256},  // conv2-like
	{192, 256, 576}, // conv2 dW
	{33, 700, 301},  // everything ragged across block boundaries
	{8, 16, 260},    // n spans two NC blocks
}

func TestMatMulBlockedMatchesReference(t *testing.T) {
	for _, s := range gemmShapes {
		g := NewRNG(int64(s.m*s.k + s.n))
		a := g.Uniform(-1, 1, s.m, s.k)
		b := g.Uniform(-1, 1, s.k, s.n)
		got := New(s.m, s.n)
		want := New(s.m, s.n)
		MatMulBlockedInto(got, a, b)
		matMulBlockedRef(want, a, b)
		for i := range got.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("%dx%dx%d: blocked kernel diverges from scalar reference at %d: %g vs %g",
					s.m, s.k, s.n, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulBlockedSerialParallelBitwise(t *testing.T) {
	for _, s := range gemmShapes {
		g := NewRNG(int64(s.m + s.k + s.n))
		a := g.Uniform(-1, 1, s.m, s.k)
		b := g.Uniform(-1, 1, s.k, s.n)
		serial := New(s.m, s.n)
		parallel := New(s.m, s.n)

		prev := SetMaxWorkers(1)
		MatMulBlockedInto(serial, a, b)
		SetMaxWorkers(8)
		MatMulBlockedInto(parallel, a, b)
		SetMaxWorkers(prev)

		for i := range serial.Data {
			if math.Float32bits(serial.Data[i]) != math.Float32bits(parallel.Data[i]) {
				t.Fatalf("%dx%dx%d: parallel blocked GEMM diverges from serial at %d", s.m, s.k, s.n, i)
			}
		}
	}
}

// TestMatMulIntoDispatchAgreement checks both sides of the size dispatch:
// small problems must stay bitwise identical to the unrolled kernel (they
// run it), and large problems — which re-associate across KC blocks — must
// agree with the unrolled kernel within accumulation tolerance.
func TestMatMulIntoDispatchAgreement(t *testing.T) {
	small := struct{ m, k, n int }{8, 16, 32} // k*n below blockedMinWork
	g := NewRNG(7)
	a := g.Uniform(-1, 1, small.m, small.k)
	b := g.Uniform(-1, 1, small.k, small.n)
	got := New(small.m, small.n)
	want := New(small.m, small.n)
	MatMulInto(got, a, b)
	MatMulUnrolledInto(want, a, b)
	for i := range got.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("small-problem dispatch must be bitwise-unrolled; element %d differs", i)
		}
	}

	big := struct{ m, k, n int }{64, 576, 256}
	a = g.Uniform(-1, 1, big.m, big.k)
	b = g.Uniform(-1, 1, big.k, big.n)
	got = New(big.m, big.n)
	want = New(big.m, big.n)
	MatMulInto(got, a, b)
	MatMulUnrolledInto(want, a, b)
	for i := range got.Data {
		d := float64(got.Data[i] - want.Data[i])
		if math.Abs(d) > 1e-3 {
			t.Fatalf("blocked/unrolled disagree beyond tolerance at %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulTransBIntoBitwise(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 64, 10}, {1, 300, 301}, {3, 17, 5}, {32, 128, 64}, {6, 9, 4},
	}
	for _, s := range shapes {
		g := NewRNG(int64(s.m*31 + s.n))
		a := g.Uniform(-1, 1, s.m, s.k)
		b := g.Uniform(-1, 1, s.n, s.k)
		want := transBRef(a, b)

		for _, workers := range []int{1, 8} {
			prev := SetMaxWorkers(workers)
			got := New(s.m, s.n)
			MatMulTransBInto(got, a, b)
			SetMaxWorkers(prev)
			for i := range got.Data {
				if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
					t.Fatalf("%dx%dx%d workers=%d: TransB diverges from reference at %d",
						s.m, s.k, s.n, workers, i)
				}
			}
		}

		// Ragged chunk boundaries must not change values either.
		got := New(s.m, s.n)
		for j := 0; j < s.n; {
			hi := min(j+3, s.n)
			TransBRange(got, a, b, j, hi)
			j = hi
		}
		for i := range got.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("%dx%dx%d: ragged TransBRange chunking changed element %d", s.m, s.k, s.n, i)
			}
		}
	}
}

func TestMatMulStillCorrect(t *testing.T) {
	// End-to-end sanity against a float64 reference at a dispatching size.
	m, k, n := 48, 400, 96
	g := NewRNG(11)
	a := g.Uniform(-1, 1, m, k)
	b := g.Uniform(-1, 1, k, n)
	got := MatMul(a, b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				s += float64(a.Data[i*k+kk]) * float64(b.Data[kk*n+j])
			}
			if math.Abs(s-float64(got.Data[i*n+j])) > 1e-3 {
				t.Fatalf("(%d,%d): got %g want %g", i, j, got.Data[i*n+j], s)
			}
		}
	}
}

func TestConvGemmStateMatchesIm2ColGemm(t *testing.T) {
	geoms := []ConvGeom{
		{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 2, InH: 9, InW: 7, KH: 5, KW: 5, Stride: 2, Pad: 2},
		{InC: 4, InH: 5, InW: 5, KH: 1, KW: 1, Stride: 1, Pad: 0},
		{InC: 1, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 3, Pad: 2},
	}
	for gi, geom := range geoms {
		k := geom.InC * geom.KH * geom.KW
		p := geom.OutH() * geom.OutW()
		outC := 10
		g := NewRNG(int64(100 + gi))
		img := g.Uniform(-1, 1, geom.InC, geom.InH, geom.InW)
		w := g.Uniform(-1, 1, outC, k)
		bias := g.Uniform(-1, 1, outC)

		// Reference: materialized im2col, per-element ascending-k dot + bias,
		// exactly the legacy conv kernel's order.
		cols := make([]float32, p*k)
		geom.Im2Col(cols, img.Data)
		want := make([]float32, outC*p)
		for o := 0; o < outC; o++ {
			wrow := w.Data[o*k : (o+1)*k]
			for pos := 0; pos < p; pos++ {
				crow := cols[pos*k : (pos+1)*k]
				var s float32
				for j, wv := range wrow {
					s += wv * crow[j]
				}
				want[o*p+pos] = s + bias.Data[o]
			}
		}

		st := &ConvGemmState{
			G: geom, OutC: outC, W: w.Data, Bias: bias.Data,
			Panel: make([]float32, ConvPanelLen(k, p)),
			Img:   img.Data, Out: make([]float32, outC*p),
		}
		for _, workers := range []int{1, 8} {
			prev := SetMaxWorkers(workers)
			for i := range st.Out {
				st.Out[i] = -999 // stale arena garbage: every element must be rewritten
			}
			st.Run()
			SetMaxWorkers(prev)
			for i := range st.Out {
				if math.Float32bits(st.Out[i]) != math.Float32bits(want[i]) {
					t.Fatalf("geom %d workers=%d: fused conv diverges from legacy at %d: %g vs %g",
						gi, workers, i, st.Out[i], want[i])
				}
			}
		}
	}
}

func TestConvGemmStateBinaryScaleMatchesLegacy(t *testing.T) {
	geom := ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	k := geom.InC * geom.KH * geom.KW
	p := geom.OutH() * geom.OutW()
	outC := 6
	g := NewRNG(42)
	img := g.Uniform(-1, 1, geom.InC, geom.InH, geom.InW)
	w := g.Uniform(-1, 1, outC, k)
	scale := g.Uniform(0.1, 2, p)

	// Legacy order: raw im2col, cols = +-scale by sign (sign(0)=+1),
	// ascending-k dot, then bias. Bias nil here; the binary layer's bias
	// add is covered by its own fuse test.
	raw := make([]float32, p*k)
	geom.Im2Col(raw, img.Data)
	cols := make([]float32, p*k)
	for pos := 0; pos < p; pos++ {
		sc := scale.Data[pos]
		for j := 0; j < k; j++ {
			if raw[pos*k+j] < 0 {
				cols[pos*k+j] = -sc
			} else {
				cols[pos*k+j] = sc
			}
		}
	}
	want := make([]float32, outC*p)
	for o := 0; o < outC; o++ {
		wrow := w.Data[o*k : (o+1)*k]
		for pos := 0; pos < p; pos++ {
			crow := cols[pos*k : (pos+1)*k]
			var s float32
			for j, wv := range wrow {
				s += wv * crow[j]
			}
			want[o*p+pos] = s
		}
	}

	st := &ConvGemmState{
		G: geom, OutC: outC, W: w.Data, Scale: scale.Data,
		Panel: make([]float32, ConvPanelLen(k, p)),
		Img:   img.Data, Out: make([]float32, outC*p),
	}
	st.Run()
	for i := range st.Out {
		if math.Float32bits(st.Out[i]) != math.Float32bits(want[i]) {
			t.Fatalf("binary fused conv diverges from legacy at %d: %g vs %g", i, st.Out[i], want[i])
		}
	}
}

func BenchmarkMatMulTransBInto(b *testing.B) {
	shapes := []struct{ m, k, n int }{
		{1, 4096, 3000}, // fc6 single-sample serving
		{1, 3000, 3000}, // fc7 single-sample serving
	}
	for _, s := range shapes {
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			g := NewRNG(1)
			a := g.Uniform(-1, 1, s.m, s.k)
			bb := g.Uniform(-1, 1, s.n, s.k)
			dst := New(s.m, s.n)
			b.SetBytes(int64(s.m) * int64(s.k) * int64(s.n) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulTransBInto(dst, a, bb)
			}
		})
	}
}
