package tensor

import (
	"strings"
	"testing"
)

func TestOnesAndFull(t *testing.T) {
	o := Ones(2, 3)
	for _, v := range o.Data {
		if v != 1 {
			t.Fatal("Ones must fill with 1")
		}
	}
	f := Full(2.5, 4)
	for _, v := range f.Data {
		if v != 2.5 {
			t.Fatal("Full must fill with the value")
		}
	}
}

func TestFillAndZero(t *testing.T) {
	x := Ones(3)
	x.Fill(7)
	if x.Data[1] != 7 {
		t.Fatal("Fill failed")
	}
	x.Zero()
	if x.Data[2] != 0 {
		t.Fatal("Zero failed")
	}
}

func TestCopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom size mismatch did not panic")
		}
	}()
	New(3).CopyFrom(New(4))
}

func TestRowPanicsOnNonMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Row on rank-3 tensor did not panic")
		}
	}()
	New(2, 2, 2).Row(0)
}

func TestBatchPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Batch out of range did not panic")
		}
	}()
	New(2, 3).Batch(5)
}

func TestAtPanicsOnBadIndex(t *testing.T) {
	x := New(2, 3)
	for _, idx := range [][]int{{0}, {0, 3}, {-1, 0}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%v) did not panic", idx)
				}
			}()
			x.At(idx...)
		}()
	}
}

func TestStringForms(t *testing.T) {
	small := FromSlice([]float32{1, 2}, 2)
	if s := small.String(); !strings.Contains(s, "1") || !strings.Contains(s, "Tensor") {
		t.Fatalf("small String = %q", s)
	}
	big := New(100)
	if s := big.String(); !strings.Contains(s, "n=100") {
		t.Fatalf("big String = %q", s)
	}
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	g := NewRNG(1)
	a := g.Uniform(-1, 1, 4, 5)
	b := g.Uniform(-1, 1, 5, 6)
	want := MatMul(a, b)
	dst := New(4, 6)
	dst.Fill(99) // must be overwritten, not accumulated
	MatMulInto(dst, a, b)
	if !Equal(want, dst, 0) {
		t.Fatal("MatMulInto disagrees with MatMul")
	}
}

func TestMatMulIntoShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMulInto with wrong dst shape did not panic")
		}
	}()
	MatMulInto(New(2, 2), New(2, 3), New(3, 3))
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(1)
	a := parent.Split()
	b := parent.Split()
	av := a.Normal(0, 1, 50)
	bv := b.Normal(0, 1, 50)
	if Equal(av, bv, 0) {
		t.Fatal("split children produced identical streams")
	}
}

func TestSoftmaxRequiresRank2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Softmax on rank-1 did not panic")
		}
	}()
	Softmax(New(4))
}
