package tensor

import (
	"math"
	"testing"
)

// TestKernelAsmMatchesGo pins the bitwise interchangeability of the
// dispatched microkernels (AVX asm on capable amd64 hosts) with the
// pure-Go reference bodies: vmulps+vaddps must round each lane exactly
// like the scalar `acc += a*b` chain. On hosts without the asm path the
// test degenerates to comparing the Go kernel with itself, which keeps it
// portable.
func TestKernelAsmMatchesGo(t *testing.T) {
	rng := NewRNG(99)
	for _, k := range []int{1, 2, 7, 64, 255, 1000} {
		a := rng.Uniform(-2, 2, 4, k)
		bp := rng.Uniform(-2, 2, k*gemmNR)
		a0, a1, a2, a3 := a.Data[:k], a.Data[k:2*k], a.Data[2*k:3*k], a.Data[3*k:4*k]

		var got4 [gemmMR][gemmNR]float32
		var want4 [gemmMR][gemmNR]float32
		kern4x8(a0, a1, a2, a3, bp.Data, &got4)
		kern4x8go(a0, a1, a2, a3, bp.Data, &want4)
		for r := 0; r < gemmMR; r++ {
			for j := 0; j < gemmNR; j++ {
				if math.Float32bits(got4[r][j]) != math.Float32bits(want4[r][j]) {
					t.Fatalf("k=%d: kern4x8[%d][%d] = %g, pure-Go %g", k, r, j, got4[r][j], want4[r][j])
				}
			}
		}

		var got1 [gemmNR]float32
		var want1 [gemmNR]float32
		kern1x8(a2, bp.Data, &got1)
		kern1x8go(a2, bp.Data, &want1)
		for j := 0; j < gemmNR; j++ {
			if math.Float32bits(got1[j]) != math.Float32bits(want1[j]) {
				t.Fatalf("k=%d: kern1x8[%d] = %g, pure-Go %g", k, j, got1[j], want1[j])
			}
		}
	}
}
