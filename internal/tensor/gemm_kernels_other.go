//go:build !amd64

package tensor

func kern4x8(a0, a1, a2, a3, bp []float32, acc *[4][8]float32) {
	kern4x8go(a0, a1, a2, a3, bp, acc)
}

func kern1x8(a0, bp []float32, acc *[8]float32) {
	kern1x8go(a0, bp, acc)
}
