//go:build amd64

package tensor

// AVX dispatch for the GEMM microkernels. The assembly kernels
// (gemm_kernels_amd64.s) use VEX-encoded vmulps/vaddps — per-lane bitwise
// identical to scalar mul-then-add, so swapping them in changes no output
// bit — but VEX requires AVX plus OS-enabled YMM state, so detection goes
// through CPUID and XGETBV at init. Everything below AVX (or GOARCH !=
// amd64) takes the pure-Go kernels.

// cpuidex and xgetbv0 are implemented in gemm_kernels_amd64.s.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

//go:noescape
func kern4x8asm(a0, a1, a2, a3, bp *float32, k int, acc *[4][8]float32)

//go:noescape
func kern1x8asm(a0, bp *float32, k int, acc *[8]float32)

// haveAVX reports CPUID AVX + OSXSAVE with XMM|YMM state enabled in XCR0.
var haveAVX = func() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 1 {
		return false
	}
	_, _, ecx, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	eax, _ := xgetbv0()
	return eax&0x6 == 0x6
}()

func kern4x8(a0, a1, a2, a3, bp []float32, acc *[4][8]float32) {
	k := len(a0)
	if haveAVX && k > 0 {
		kern4x8asm(&a0[0], &a1[0], &a2[0], &a3[0], &bp[0], k, acc)
		return
	}
	kern4x8go(a0, a1, a2, a3, bp, acc)
}

func kern1x8(a0, bp []float32, acc *[8]float32) {
	k := len(a0)
	if haveAVX && k > 0 {
		kern1x8asm(&a0[0], &bp[0], k, acc)
		return
	}
	kern1x8go(a0, bp, acc)
}
