// Package tensor provides the dense float32 tensor type and the numeric
// kernels (element-wise ops, matrix multiply, im2col) that the neural-network
// substrate is built on. Tensors use row-major layout; convolutional data is
// stored NCHW (batch, channel, height, width).
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major float32 array with an explicit shape.
// The zero value is an empty tensor; use New, Zeros or the RNG helpers to
// create usable tensors.
type Tensor struct {
	// Shape holds the extent of each dimension, outermost first.
	Shape []int
	// Data is the backing array, len(Data) == product(Shape).
	Data []float32
}

// New creates a tensor with the given shape backed by freshly allocated,
// zeroed storage.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// Zeros is an alias for New, kept for readability at call sites that
// contrast zero tensors with randomly initialized ones.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Ones creates a tensor of the given shape filled with 1.
func Ones(shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = 1
	}
	return t
}

// Full creates a tensor of the given shape filled with v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly, not copied; the caller must not alias it afterwards unless that
// sharing is intended. It panics if len(data) does not match the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's storage with a new shape. One
// dimension may be -1, in which case it is inferred. It panics if the
// element count cannot match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
		case d <= 0:
			panic(fmt.Sprintf("tensor: Reshape invalid dimension %d", d))
		default:
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.Data)%known != 0 {
			panic(fmt.Sprintf("tensor: Reshape cannot infer dimension for %v from %d elements", shape, len(t.Data)))
		}
		shape[infer] = len(t.Data) / known
		known *= shape[infer]
	}
	if known != len(t.Data) {
		panic(fmt.Sprintf("tensor: Reshape %v incompatible with %d elements", shape, len(t.Data)))
	}
	return &Tensor{Shape: shape, Data: t.Data}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set assigns v to the element at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// CopyFrom copies o's data into t. The shapes must have equal element counts.
func (t *Tensor) CopyFrom(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.Data), len(o.Data)))
	}
	copy(t.Data, o.Data)
}

// String renders small tensors in full and large tensors as a summary.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.Shape)
	if len(t.Data) <= 16 {
		fmt.Fprintf(&b, "%v", t.Data)
	} else {
		mn, mx := t.MinMax()
		fmt.Fprintf(&b, "{n=%d min=%.4g max=%.4g}", len(t.Data), mn, mx)
	}
	return b.String()
}

// MinMax returns the minimum and maximum elements. It panics on empty
// tensors (New forbids them, so this only triggers on zero-value misuse).
func (t *Tensor) MinMax() (mn, mx float32) {
	mn, mx = t.Data[0], t.Data[0]
	for _, v := range t.Data[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// Sum returns the sum of all elements in float64 for accuracy.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.Data)) }

// L1Norm returns the sum of absolute values of all elements.
func (t *Tensor) L1Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += math.Abs(float64(v))
	}
	return s
}

// L2Norm returns the Euclidean norm of all elements.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Argmax returns the index of the largest element in the flattened tensor.
func (t *Tensor) Argmax() int {
	best, bi := t.Data[0], 0
	for i, v := range t.Data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Row returns row i of a rank-2 tensor as a slice sharing storage.
func (t *Tensor) Row(i int) []float32 {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on rank-%d tensor", len(t.Shape)))
	}
	w := t.Shape[1]
	return t.Data[i*w : (i+1)*w]
}

// Batch returns element i of the outermost dimension as a tensor sharing
// storage, with that dimension removed.
func (t *Tensor) Batch(i int) *Tensor {
	if len(t.Shape) < 2 {
		panic("tensor: Batch needs rank >= 2")
	}
	if i < 0 || i >= t.Shape[0] {
		panic(fmt.Sprintf("tensor: Batch index %d out of range %d", i, t.Shape[0]))
	}
	n := len(t.Data) / t.Shape[0]
	return &Tensor{
		Shape: append([]int(nil), t.Shape[1:]...),
		Data:  t.Data[i*n : (i+1)*n],
	}
}
