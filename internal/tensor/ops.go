package tensor

import (
	"fmt"
	"math"
)

// AddInto computes dst = a + b element-wise. All three must have the same
// element count; dst may alias a or b.
func AddInto(dst, a, b *Tensor) {
	checkSameLen("AddInto", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// SubInto computes dst = a - b element-wise.
func SubInto(dst, a, b *Tensor) {
	checkSameLen("SubInto", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// MulInto computes dst = a * b element-wise (Hadamard product).
func MulInto(dst, a, b *Tensor) {
	checkSameLen("MulInto", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Add returns a new tensor a + b.
func Add(a, b *Tensor) *Tensor {
	out := New(a.Shape...)
	AddInto(out, a, b)
	return out
}

// Sub returns a new tensor a - b.
func Sub(a, b *Tensor) *Tensor {
	out := New(a.Shape...)
	SubInto(out, a, b)
	return out
}

// Mul returns a new tensor a * b (element-wise).
func Mul(a, b *Tensor) *Tensor {
	out := New(a.Shape...)
	MulInto(out, a, b)
	return out
}

// Scale multiplies every element of t by s in place and returns t.
func (t *Tensor) Scale(s float32) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// AddScaled computes t += s*o element-wise in place (axpy).
func (t *Tensor) AddScaled(s float32, o *Tensor) {
	checkSameLen("AddScaled", t, o)
	for i := range t.Data {
		t.Data[i] += s * o.Data[i]
	}
}

// Apply replaces every element v with f(v) in place and returns t.
func (t *Tensor) Apply(f func(float32) float32) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
	return t
}

// Sign writes sign(src) into dst using the convention sign(0) = +1, the
// binarization used by XNOR-Net style networks.
func Sign(dst, src *Tensor) {
	checkSameLen("Sign", dst, src)
	for i, v := range src.Data {
		if v < 0 {
			dst.Data[i] = -1
		} else {
			dst.Data[i] = 1
		}
	}
}

func checkSameLen(op string, ts ...*Tensor) {
	n := len(ts[0].Data)
	for _, t := range ts[1:] {
		if len(t.Data) != n {
			panic(fmt.Sprintf("tensor: %s size mismatch %d vs %d", op, n, len(t.Data)))
		}
	}
}

// MatMul computes C = A x B for rank-2 tensors A (m x k) and B (k x n),
// returning a new m x n tensor. The kernel is blocked over the inner
// dimension and accumulates along contiguous rows of B for cache locality.
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions differ: %d vs %d", k, k2))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes dst = a x b where dst is a preallocated m x n tensor.
// dst must not alias a or b.
//
// Problems large enough that B no longer fits low cache levels dispatch to
// the cache-blocked kernel (gemm.go); small problems keep the 4-wide
// unrolled kernel, whose pack-free start-up is faster and whose results
// are bit-for-bit what this function has always produced. Both kernels are
// deterministic for any worker count; they differ from each other only by
// float addition order (TestMatMulIntoDispatchAgreement bounds the drift).
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if b.Shape[0] != k || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch a=%v b=%v dst=%v", a.Shape, b.Shape, dst.Shape))
	}
	if m >= gemmMR && k > 1 && k*n >= blockedMinWork {
		bufp := gemmPanelPool.Get().(*[]float32)
		matMulBlocked(dst.Data, a.Data, b.Data, m, k, n, *bufp)
		gemmPanelPool.Put(bufp)
		return
	}
	MatMulUnrolledInto(dst, a, b)
}

// MatMulUnrolledInto is the pre-blocking GEMM kernel, kept as the
// small-problem path and as the comparison baseline for the kernels bench.
//
// The kernel keeps the i-k-j loop order (inner loop walks contiguous rows
// of B and C) but accumulates four B rows per sweep: one pass over C per
// four values of A instead of one per value, which quarters the C-row
// load/store traffic and drops the data-dependent av == 0 branch that the
// CPU could not predict on dense inputs. Accumulation order per output
// element is fixed and chunking-free, so results are deterministic
// run-to-run.
func MatMulUnrolledInto(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if b.Shape[0] != k || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch a=%v b=%v dst=%v", a.Shape, b.Shape, dst.Shape))
	}
	ad, bd, cd := a.Data, b.Data, dst.Data
	for i := range cd {
		cd[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		kk := 0
		for ; kk+4 <= k; kk += 4 {
			a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
			b0 := bd[kk*n : (kk+1)*n]
			b1 := bd[(kk+1)*n : (kk+2)*n]
			b2 := bd[(kk+2)*n : (kk+3)*n]
			b3 := bd[(kk+3)*n : (kk+4)*n]
			for j := range crow {
				crow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; kk < k; kk++ {
			av := arow[kk]
			brow := bd[kk*n : (kk+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes C = A x B^T for A (m x k) and B (n x k), returning
// an m x n tensor. This layout lets both inner loops run over contiguous
// memory, which is the fast path for convolution backward passes. The
// register-tiled kernel (TransBRange) keeps the historical per-element
// ascending-k dot product, so results are bitwise identical to the old
// serial loop at any worker count.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimensions differ: %d vs %d", k, k2))
	}
	c := New(m, n)
	MatMulTransBInto(c, a, b)
	return c
}

// MatMulTransA computes C = A^T x B for A (k x m) and B (k x n), returning
// an m x n tensor.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA outer dimensions differ: %d vs %d", k, k2))
	}
	c := New(m, n)
	ad, bd, cd := a.Data, b.Data, c.Data
	for kk := 0; kk < k; kk++ {
		arow := ad[kk*m : (kk+1)*m]
		brow := bd[kk*n : (kk+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := cd[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// Transpose returns a new tensor that is the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("tensor: Transpose requires rank-2 tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	t := New(n, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			t.Data[j*m+i] = v
		}
	}
	return t
}

// Softmax writes row-wise softmax of logits (batch x classes) into a new
// tensor, using the max-subtraction trick for numerical stability.
func Softmax(logits *Tensor) *Tensor {
	if len(logits.Shape) != 2 {
		panic("tensor: Softmax requires rank-2 tensor (batch x classes)")
	}
	out := New(logits.Shape...)
	n := logits.Shape[1]
	for i := 0; i < logits.Shape[0]; i++ {
		src := logits.Data[i*n : (i+1)*n]
		dst := out.Data[i*n : (i+1)*n]
		SoftmaxRow(dst, src)
	}
	return out
}

// SoftmaxRow computes softmax of src into dst; both have equal length.
func SoftmaxRow(dst, src []float32) {
	mx := src[0]
	for _, v := range src[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for j, v := range src {
		e := math.Exp(float64(v - mx))
		dst[j] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for j := range dst {
		dst[j] *= inv
	}
}

// Equal reports whether a and b have the same shape and all elements within
// tol of each other.
func Equal(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(float64(a.Data[i]-b.Data[i])) > tol {
			return false
		}
	}
	return true
}
