package tensor

import (
	"sync/atomic"
	"testing"
)

// Every index in [0, n) must be visited exactly once, for chunk counts
// below, equal to and above n.
func TestParallelForCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		prev := SetMaxWorkers(workers)
		for _, n := range []int{0, 1, 2, 5, 63, 64, 65, 1000} {
			counts := make([]int32, n)
			ParallelFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
		SetMaxWorkers(prev)
	}
}

// Nested ParallelFor calls must complete even when every pool worker is
// already busy — the inline fallback guarantees progress.
func TestParallelForNestedNoDeadlock(t *testing.T) {
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)
	var total atomic.Int64
	ParallelFor(16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ParallelFor(16, func(lo2, hi2 int) {
				total.Add(int64(hi2 - lo2))
			})
		}
	})
	if got := total.Load(); got != 16*16 {
		t.Fatalf("nested ParallelFor covered %d elements, want %d", got, 16*16)
	}
}

// Chunked execution must write the same bytes as serial execution when
// chunks own disjoint ranges.
func TestParallelForDisjointWritesDeterministic(t *testing.T) {
	const n = 257
	fill := func(workers int) []float64 {
		prev := SetMaxWorkers(workers)
		defer SetMaxWorkers(prev)
		out := make([]float64, n)
		ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				// Accumulate in a fixed per-element order so the result is
				// chunking-independent, like the conv kernels do.
				var s float64
				for j := 0; j < 37; j++ {
					s += float64(i*j) * 1e-3
				}
				out[i] = s
			}
		})
		return out
	}
	serial := fill(1)
	for _, workers := range []int{2, 5, 32} {
		got := fill(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: element %d differs: %v vs %v", workers, i, got[i], serial[i])
			}
		}
	}
}
