package tensor

import (
	"math"
	"math/rand"
)

// RNG is a seeded random source for reproducible initialization and data
// generation. It wraps math/rand so every experiment in the repository can
// be replayed bit-for-bit from its seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float32 returns a uniform value in [0,1).
func (g *RNG) Float32() float32 { return g.r.Float32() }

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal value.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Split derives an independent child generator. Use one child per
// concurrent consumer so goroutines never share a rand.Rand.
func (g *RNG) Split() *RNG { return NewRNG(g.r.Int63()) }

// Uniform fills a new tensor of the given shape with values in [lo, hi).
func (g *RNG) Uniform(lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	span := hi - lo
	for i := range t.Data {
		t.Data[i] = lo + span*g.Float32()
	}
	return t
}

// Normal fills a new tensor of the given shape with N(mean, std^2) values.
func (g *RNG) Normal(mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(mean + std*g.NormFloat64())
	}
	return t
}

// KaimingConv initializes a conv weight tensor (outC, inC, kH, kW) with
// Kaiming/He normal scaling suited to ReLU networks: std = sqrt(2/fanIn).
func (g *RNG) KaimingConv(outC, inC, kH, kW int) *Tensor {
	fanIn := inC * kH * kW
	std := math.Sqrt(2.0 / float64(fanIn))
	return g.Normal(0, std, outC, inC, kH, kW)
}

// KaimingLinear initializes a linear weight tensor (out, in) with Kaiming
// normal scaling.
func (g *RNG) KaimingLinear(out, in int) *Tensor {
	std := math.Sqrt(2.0 / float64(in))
	return g.Normal(0, std, out, in)
}
