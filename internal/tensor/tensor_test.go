package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatalf("bad rank/dim: rank=%d dim1=%d", x.Rank(), x.Dim(1))
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero storage")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}, {3, 0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if got := x.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %v, want 7", got)
	}
	if got := x.Data[1*3+2]; got != 7 {
		t.Fatalf("row-major layout broken: Data[5] = %v", got)
	}
}

func TestReshapeInference(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, -1)
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("Reshape(3,-1) shape = %v", y.Shape)
	}
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("Reshape must share storage")
	}
}

func TestReshapeIncompatiblePanics(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("incompatible Reshape did not panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone must copy storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 4)
	b := FromSlice([]float32{4, 3, 2, 1}, 4)
	if s := Add(a, b); s.Data[0] != 5 || s.Data[3] != 5 {
		t.Fatalf("Add wrong: %v", s.Data)
	}
	if d := Sub(a, b); d.Data[0] != -3 || d.Data[3] != 3 {
		t.Fatalf("Sub wrong: %v", d.Data)
	}
	if m := Mul(a, b); m.Data[1] != 6 {
		t.Fatalf("Mul wrong: %v", m.Data)
	}
	c := a.Clone()
	c.AddScaled(2, b)
	if c.Data[0] != 9 {
		t.Fatalf("AddScaled wrong: %v", c.Data)
	}
}

func TestSignConvention(t *testing.T) {
	src := FromSlice([]float32{-2, -0.0001, 0, 0.5}, 4)
	dst := New(4)
	Sign(dst, src)
	want := []float32{-1, -1, 1, 1}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("Sign[%d] = %v, want %v (sign(0) must be +1)", i, dst.Data[i], w)
		}
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched inner dims did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

// TestMatMulVariantsAgree checks A x B^T and A^T x B against the plain
// kernel using explicit transposes, over random matrices.
func TestMatMulVariantsAgree(t *testing.T) {
	g := NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+g.Intn(8), 1+g.Intn(8), 1+g.Intn(8)
		a := g.Uniform(-1, 1, m, k)
		b := g.Uniform(-1, 1, k, n)

		ref := MatMul(a, b)
		viaTransB := MatMulTransB(a, Transpose(b))
		if !Equal(ref, viaTransB, 1e-4) {
			t.Fatalf("trial %d: MatMulTransB disagrees with MatMul", trial)
		}
		viaTransA := MatMulTransA(Transpose(a), b)
		if !Equal(ref, viaTransA, 1e-4) {
			t.Fatalf("trial %d: MatMulTransA disagrees with MatMul", trial)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := NewRNG(2)
	a := g.Uniform(-1, 1, 5, 7)
	if !Equal(a, Transpose(Transpose(a)), 0) {
		t.Fatal("Transpose(Transpose(a)) != a")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	g := NewRNG(3)
	logits := g.Uniform(-10, 10, 8, 16)
	p := Softmax(logits)
	for i := 0; i < 8; i++ {
		var sum float64
		for _, v := range p.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of [0,1]: %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("softmax row %d sums to %v", i, sum)
		}
	}
	// Shift invariance: softmax(x + c) == softmax(x).
	shifted := logits.Clone()
	for i := range shifted.Data {
		shifted.Data[i] += 100
	}
	if !Equal(p, Softmax(shifted), 1e-5) {
		t.Fatal("softmax is not shift invariant")
	}
}

func TestSoftmaxExtremeLogitsStable(t *testing.T) {
	logits := FromSlice([]float32{1e4, -1e4, 0, 5}, 1, 4)
	p := Softmax(logits)
	for _, v := range p.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax unstable: %v", p.Data)
		}
	}
	if p.Argmax() != 0 {
		t.Fatalf("argmax = %d, want 0", p.Argmax())
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{-1, 2, -3, 4}, 4)
	if s := x.Sum(); s != 2 {
		t.Fatalf("Sum = %v", s)
	}
	if m := x.Mean(); m != 0.5 {
		t.Fatalf("Mean = %v", m)
	}
	if l1 := x.L1Norm(); l1 != 10 {
		t.Fatalf("L1 = %v", l1)
	}
	if l2 := x.L2Norm(); math.Abs(l2-math.Sqrt(30)) > 1e-9 {
		t.Fatalf("L2 = %v", l2)
	}
	if i := x.Argmax(); i != 3 {
		t.Fatalf("Argmax = %d", i)
	}
	mn, mx := x.MinMax()
	if mn != -3 || mx != 4 {
		t.Fatalf("MinMax = %v,%v", mn, mx)
	}
}

func TestBatchSharesStorage(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b1 := x.Batch(1)
	if b1.Rank() != 1 || b1.Dim(0) != 3 || b1.Data[0] != 4 {
		t.Fatalf("Batch(1) = %v %v", b1.Shape, b1.Data)
	}
	b1.Data[0] = 40
	if x.Data[3] != 40 {
		t.Fatal("Batch must share storage")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).Normal(0, 1, 100)
	b := NewRNG(42).Normal(0, 1, 100)
	if !Equal(a, b, 0) {
		t.Fatal("same seed must give identical tensors")
	}
	c := NewRNG(43).Normal(0, 1, 100)
	if Equal(a, c, 0) {
		t.Fatal("different seeds gave identical tensors")
	}
}

func TestKaimingConvScale(t *testing.T) {
	g := NewRNG(7)
	w := g.KaimingConv(64, 32, 3, 3)
	var ss float64
	for _, v := range w.Data {
		ss += float64(v) * float64(v)
	}
	std := math.Sqrt(ss / float64(w.Len()))
	want := math.Sqrt(2.0 / (32 * 3 * 3))
	if math.Abs(std-want)/want > 0.1 {
		t.Fatalf("Kaiming std = %v, want about %v", std, want)
	}
}

// Property: Col2Im(Im2Col(x)) with stride=kernel (non-overlapping) recovers
// the unpadded input exactly.
func TestIm2ColCol2ImNonOverlappingIdentity(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 8, InW: 8, KH: 2, KW: 2, Stride: 2, Pad: 0}
	rng := NewRNG(11)
	img := rng.Uniform(-1, 1, g.InC*g.InH*g.InW)
	cols := make([]float32, g.OutH()*g.OutW()*g.InC*g.KH*g.KW)
	g.Im2Col(cols, img.Data)
	back := make([]float32, len(img.Data))
	g.Col2Im(back, cols)
	for i := range back {
		if back[i] != img.Data[i] {
			t.Fatalf("identity violated at %d: %v != %v", i, back[i], img.Data[i])
		}
	}
}

// Property: Im2Col and Col2Im are adjoint: <Im2Col(x), y> == <x, Col2Im(y)>.
// This is exactly the identity the conv backward pass relies on.
func TestIm2ColAdjointProperty(t *testing.T) {
	rng := NewRNG(13)
	for trial := 0; trial < 10; trial++ {
		g := ConvGeom{
			InC: 1 + rng.Intn(3), InH: 4 + rng.Intn(5), InW: 4 + rng.Intn(5),
			KH: 1 + rng.Intn(3), KW: 1 + rng.Intn(3),
			Stride: 1 + rng.Intn(2), Pad: rng.Intn(2),
		}
		if g.Validate() != nil {
			continue
		}
		nImg := g.InC * g.InH * g.InW
		nCols := g.OutH() * g.OutW() * g.InC * g.KH * g.KW
		x := rng.Uniform(-1, 1, nImg)
		y := rng.Uniform(-1, 1, nCols)

		cx := make([]float32, nCols)
		g.Im2Col(cx, x.Data)
		var lhs float64
		for i := range cx {
			lhs += float64(cx[i]) * float64(y.Data[i])
		}

		iy := make([]float32, nImg)
		g.Col2Im(iy, y.Data)
		var rhs float64
		for i := range iy {
			rhs += float64(iy[i]) * float64(x.Data[i])
		}
		if math.Abs(lhs-rhs) > 1e-3*(1+math.Abs(lhs)) {
			t.Fatalf("trial %d: adjoint violated: %v vs %v (geom %+v)", trial, lhs, rhs, g)
		}
	}
}

func TestConvGeomValidate(t *testing.T) {
	bad := []ConvGeom{
		{InC: 0, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1},
		{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 0},
		{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: -1},
		{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1, Pad: 0},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("case %d: Validate accepted invalid geometry %+v", i, g)
		}
	}
	good := ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected valid geometry: %v", err)
	}
	if good.OutH() != 32 || good.OutW() != 32 {
		t.Errorf("same-padding output = %dx%d, want 32x32", good.OutH(), good.OutW())
	}
}

// Property-based: addition is commutative and Scale distributes over Add.
func TestArithmeticPropertiesQuick(t *testing.T) {
	f := func(raw []float32, s float32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		for _, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return true
			}
		}
		if math.IsNaN(float64(s)) || math.IsInf(float64(s), 0) {
			return true
		}
		a := FromSlice(append([]float32(nil), raw...), len(raw))
		b := FromSlice(append([]float32(nil), raw...), len(raw))
		b.Scale(0.5)
		if !Equal(Add(a, b), Add(b, a), 0) {
			return false
		}
		lhs := Add(a, b).Scale(s)
		rhs := Add(a.Clone().Scale(s), b.Clone().Scale(s))
		return Equal(lhs, rhs, 1e-2*math.Abs(float64(s))+1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
