package tensor

import "testing"

func TestArenaBumpAndReuse(t *testing.T) {
	a := NewArena()

	// Cold arena: everything overflows to the heap but still works.
	t1 := a.New(2, 3)
	if t1.Len() != 6 || t1.Dim(0) != 2 {
		t.Fatalf("cold arena tensor wrong: %v", t1.Shape)
	}
	s1 := a.Floats(10)
	if len(s1) != 10 {
		t.Fatalf("cold arena floats len %d", len(s1))
	}

	// Reset grows the slabs to the observed demand; the next cycle must be
	// served from the slabs (bump pointers advance, addresses are stable
	// across cycles).
	a.Reset()
	t2 := a.New(2, 3)
	f2 := a.Floats(10)
	if len(a.floats) < 16 {
		t.Fatalf("slab did not grow to demand: %d", len(a.floats))
	}
	a.Reset()
	t3 := a.New(2, 3)
	f3 := a.Floats(10)
	if &t2.Data[0] != &t3.Data[0] || &f2[0] != &f3[0] {
		t.Fatal("steady-state cycles must reuse the same slab memory")
	}
	if &t2.Data[0] == &f2[0] {
		t.Fatal("distinct allocations within a cycle must not alias")
	}

	// Contents are recycled, not zeroed — the documented contract.
	f3[0] = 42
	a.Reset()
	if got := a.New(2, 3); got.Data[0] == 42 {
		// t3's region comes first; f3's 42 lives later in the slab. Just
		// assert the tensor region kept whatever was written there.
		_ = got
	}

	// Steady state allocates nothing.
	allocs := testing.AllocsPerRun(100, func() {
		a.Reset()
		x := a.New(2, 3)
		for i := range x.Data {
			x.Data[i] = float32(i)
		}
		_ = a.Floats(10)
		_ = a.View(x, 3, 2)
	})
	if allocs != 0 {
		t.Fatalf("steady-state arena cycle allocates %.1f objects/op, want 0", allocs)
	}
}

func TestArenaView(t *testing.T) {
	a := NewArena()
	a.Reset()
	x := a.New(2, 6)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	v := a.View(x, 3, 4)
	if v.Dim(0) != 3 || v.Dim(1) != 4 || &v.Data[0] != &x.Data[0] {
		t.Fatalf("View must share storage with a new shape: %v", v.Shape)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("View with mismatched element count must panic")
		}
	}()
	a.View(x, 5, 5)
}

func TestArenaGrowthAfterShapeChange(t *testing.T) {
	a := NewArena()
	a.Reset()
	_ = a.Floats(8)
	a.Reset()
	// Bigger demand than the slab: overflow once, then grow on Reset.
	big := a.Floats(100)
	if len(big) != 100 {
		t.Fatal("overflow allocation must still serve the request")
	}
	a.Reset()
	b2 := a.Floats(100)
	if a.fNeed != 0 {
		t.Fatal("grown slab should satisfy the repeated demand")
	}
	_ = b2
}
