package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window.
type ConvGeom struct {
	InC, InH, InW int // input channels and spatial extent
	KH, KW        int // kernel extent
	Stride        int
	Pad           int
}

// OutH returns the output height for the geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width for the geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Validate returns an error when the geometry produces a non-positive
// output extent or has nonsensical parameters.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 || g.KH <= 0 || g.KW <= 0 {
		return fmt.Errorf("conv geometry has non-positive extent: %+v", g)
	}
	if g.Stride <= 0 {
		return fmt.Errorf("conv geometry stride must be positive: %+v", g)
	}
	if g.Pad < 0 {
		return fmt.Errorf("conv geometry pad must be non-negative: %+v", g)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("conv geometry yields empty output: %+v", g)
	}
	return nil
}

// Im2Col unfolds a single image (C x H x W, flattened in img) into a matrix
// of shape (outH*outW) x (C*KH*KW) written into cols. Each row of cols is
// one receptive field. Out-of-bounds (padding) samples contribute zeros.
func (g ConvGeom) Im2Col(cols, img []float32) {
	outH, outW := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	if len(cols) != outH*outW*rowLen {
		panic(fmt.Sprintf("tensor: Im2Col cols length %d, want %d", len(cols), outH*outW*rowLen))
	}
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col img length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	idx := 0
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*g.Stride - g.Pad
		for ox := 0; ox < outW; ox++ {
			ix0 := ox*g.Stride - g.Pad
			for c := 0; c < g.InC; c++ {
				plane := img[c*g.InH*g.InW:]
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= g.InH {
						for kx := 0; kx < g.KW; kx++ {
							cols[idx] = 0
							idx++
						}
						continue
					}
					rowBase := iy * g.InW
					for kx := 0; kx < g.KW; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= g.InW {
							cols[idx] = 0
						} else {
							cols[idx] = plane[rowBase+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// PackColsPanel packs the im2col rows for output positions [p0, p0+pLen)
// directly into panel in the gemmNR-sliver layout the fused convolution
// microkernel consumes (convgemm.go): panel[(sv*K+kk)*gemmNR+r] holds the
// kernel-element-kk value of output position p0 + sv*gemmNR + r, where
// K = InC*KH*KW and kk enumerates (c, ky, kx) in Im2Col's order. Values
// are exactly the Im2Col matrix entries, transposed into slivers — padding
// contributes zeros and lanes past pLen are zero-filled — so the fused
// path computes the same products as the materialized path (pinned by the
// property and fuzz tests in im2col_pack_test.go).
//
// When scale is non-nil the packed value is sign(v)*scale[pos] with
// sign(0) = +1 (so padding packs +scale[pos]), folding the binary branch's
// input-scale-times-sign transform of Eq. (4) into the pack step; scale is
// indexed by absolute output position.
func (g ConvGeom) PackColsPanel(panel, img []float32, p0, pLen int, scale []float32) {
	outW := g.OutW()
	k := g.InC * g.KH * g.KW
	planeSz := g.InH * g.InW
	if len(img) != g.InC*planeSz {
		panic(fmt.Sprintf("tensor: PackColsPanel img length %d, want %d", len(img), g.InC*planeSz))
	}
	ns := (pLen + gemmNR - 1) / gemmNR
	if len(panel) < k*ns*gemmNR {
		panic(fmt.Sprintf("tensor: PackColsPanel panel length %d, want >= %d", len(panel), k*ns*gemmNR))
	}
	for q := 0; q < ns*gemmNR; q++ {
		sv, r := q/gemmNR, q%gemmNR
		idx := sv*k*gemmNR + r
		if q >= pLen {
			for kk := 0; kk < k; kk++ {
				panel[idx] = 0
				idx += gemmNR
			}
			continue
		}
		pos := p0 + q
		oy, ox := pos/outW, pos%outW
		iy0 := oy*g.Stride - g.Pad
		ix0 := ox*g.Stride - g.Pad
		var sc float32
		if scale != nil {
			sc = scale[pos]
		}
		for c := 0; c < g.InC; c++ {
			plane := img[c*planeSz : (c+1)*planeSz]
			for ky := 0; ky < g.KH; ky++ {
				iy := iy0 + ky
				if iy < 0 || iy >= g.InH {
					// Entire kernel row is padding: zeros, which under
					// the sign convention binarize to +scale.
					for kx := 0; kx < g.KW; kx++ {
						if scale != nil {
							panel[idx] = sc
						} else {
							panel[idx] = 0
						}
						idx += gemmNR
					}
					continue
				}
				rowBase := iy * g.InW
				for kx := 0; kx < g.KW; kx++ {
					ix := ix0 + kx
					var v float32
					if ix >= 0 && ix < g.InW {
						v = plane[rowBase+ix]
					}
					if scale != nil {
						if v < 0 {
							panel[idx] = -sc
						} else {
							panel[idx] = sc
						}
					} else {
						panel[idx] = v
					}
					idx += gemmNR
				}
			}
		}
	}
}

// Col2Im folds the column matrix back into image space, accumulating
// overlapping contributions. It is the adjoint of Im2Col and is used in the
// convolution backward pass. img must be zeroed by the caller when a fresh
// gradient is wanted.
func (g ConvGeom) Col2Im(img, cols []float32) {
	outH, outW := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	if len(cols) != outH*outW*rowLen {
		panic(fmt.Sprintf("tensor: Col2Im cols length %d, want %d", len(cols), outH*outW*rowLen))
	}
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2Im img length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	idx := 0
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*g.Stride - g.Pad
		for ox := 0; ox < outW; ox++ {
			ix0 := ox*g.Stride - g.Pad
			for c := 0; c < g.InC; c++ {
				plane := img[c*g.InH*g.InW:]
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= g.InH {
						idx += g.KW
						continue
					}
					rowBase := iy * g.InW
					for kx := 0; kx < g.KW; kx++ {
						ix := ix0 + kx
						if ix >= 0 && ix < g.InW {
							plane[rowBase+ix] += cols[idx]
						}
						idx++
					}
				}
			}
		}
	}
}
