package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window.
type ConvGeom struct {
	InC, InH, InW int // input channels and spatial extent
	KH, KW        int // kernel extent
	Stride        int
	Pad           int
}

// OutH returns the output height for the geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width for the geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Validate returns an error when the geometry produces a non-positive
// output extent or has nonsensical parameters.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 || g.KH <= 0 || g.KW <= 0 {
		return fmt.Errorf("conv geometry has non-positive extent: %+v", g)
	}
	if g.Stride <= 0 {
		return fmt.Errorf("conv geometry stride must be positive: %+v", g)
	}
	if g.Pad < 0 {
		return fmt.Errorf("conv geometry pad must be non-negative: %+v", g)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("conv geometry yields empty output: %+v", g)
	}
	return nil
}

// Im2Col unfolds a single image (C x H x W, flattened in img) into a matrix
// of shape (outH*outW) x (C*KH*KW) written into cols. Each row of cols is
// one receptive field. Out-of-bounds (padding) samples contribute zeros.
func (g ConvGeom) Im2Col(cols, img []float32) {
	outH, outW := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	if len(cols) != outH*outW*rowLen {
		panic(fmt.Sprintf("tensor: Im2Col cols length %d, want %d", len(cols), outH*outW*rowLen))
	}
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col img length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	idx := 0
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*g.Stride - g.Pad
		for ox := 0; ox < outW; ox++ {
			ix0 := ox*g.Stride - g.Pad
			for c := 0; c < g.InC; c++ {
				plane := img[c*g.InH*g.InW:]
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= g.InH {
						for kx := 0; kx < g.KW; kx++ {
							cols[idx] = 0
							idx++
						}
						continue
					}
					rowBase := iy * g.InW
					for kx := 0; kx < g.KW; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= g.InW {
							cols[idx] = 0
						} else {
							cols[idx] = plane[rowBase+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// Col2Im folds the column matrix back into image space, accumulating
// overlapping contributions. It is the adjoint of Im2Col and is used in the
// convolution backward pass. img must be zeroed by the caller when a fresh
// gradient is wanted.
func (g ConvGeom) Col2Im(img, cols []float32) {
	outH, outW := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	if len(cols) != outH*outW*rowLen {
		panic(fmt.Sprintf("tensor: Col2Im cols length %d, want %d", len(cols), outH*outW*rowLen))
	}
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2Im img length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	idx := 0
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*g.Stride - g.Pad
		for ox := 0; ox < outW; ox++ {
			ix0 := ox*g.Stride - g.Pad
			for c := 0; c < g.InC; c++ {
				plane := img[c*g.InH*g.InW:]
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= g.InH {
						idx += g.KW
						continue
					}
					rowBase := iy * g.InW
					for kx := 0; kx < g.KW; kx++ {
						ix := ix0 + kx
						if ix >= 0 && ix < g.InW {
							plane[rowBase+ix] += cols[idx]
						}
						idx++
					}
				}
			}
		}
	}
}
