package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Shared worker pool for the numeric kernels. Convolution forward passes
// split their output across ParallelFor; because every chunk writes a
// disjoint region and each output element is accumulated in the same
// sequential order regardless of chunking, parallel results are bitwise
// identical to a single-threaded run (see the determinism tests in
// internal/nn and internal/binary).

var (
	poolOnce    sync.Once
	poolTasks   chan func()
	poolWorkers int

	// maxWorkersOverride caps the number of chunks ParallelFor creates.
	// Zero (the default) means GOMAXPROCS. Tests set 1 to force serial
	// execution and >GOMAXPROCS to force chunked execution on small hosts.
	maxWorkersOverride atomic.Int32
)

// pool lazily starts the worker goroutines. Workers are few (GOMAXPROCS)
// and idle ones cost nothing, so the pool is never torn down. The task
// channel is deliberately unbuffered: a send succeeds only when a worker is
// parked and ready to run the chunk immediately. A buffer would accept
// chunks while every worker is busy — and if the busy worker is itself
// blocked in a ParallelFor wait, those buffered chunks never run and the
// wait never returns.
func pool() chan func() {
	poolOnce.Do(func() {
		poolWorkers = runtime.GOMAXPROCS(0)
		poolTasks = make(chan func())
		for i := 0; i < poolWorkers; i++ {
			go func() {
				for f := range poolTasks {
					f()
				}
			}()
		}
	})
	return poolTasks
}

// MaxWorkers returns the number of chunks ParallelFor aims for: the
// SetMaxWorkers override when one is active, GOMAXPROCS otherwise.
func MaxWorkers() int {
	if n := maxWorkersOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetMaxWorkers overrides the ParallelFor chunk target and returns the
// previous override (0 if none was set). n <= 0 removes the override.
// Intended for tests and benchmarks; safe to call concurrently.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxWorkersOverride.Swap(int32(n)))
}

// ParallelFor splits [0, n) into at most MaxWorkers() contiguous chunks and
// runs body(lo, hi) for each, returning when all chunks are done. The first
// chunk runs on the calling goroutine; the rest are offered to the shared
// pool and run inline when the pool is saturated, so nested ParallelFor
// calls cannot deadlock. body must only write state owned by its [lo, hi)
// range.
func ParallelFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := MaxWorkers()
	if w <= 1 || n == 1 {
		body(0, n)
		return
	}
	chunks := w
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	tasks := pool()
	var wg sync.WaitGroup
	for lo := size; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		wg.Add(1)
		f := func() {
			defer wg.Done()
			body(lo, hi)
		}
		select {
		case tasks <- f:
		default:
			f() // pool saturated: run inline, guaranteeing progress
		}
	}
	body(0, size)
	wg.Wait()
}
