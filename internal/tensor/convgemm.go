package tensor

// Fused im2col + GEMM convolution forward. The legacy conv path
// materializes the full (outH*outW) x (C*KH*KW) im2col matrix — the
// single largest allocation in the serving hot path — before multiplying.
// Here the receptive fields are packed straight into a K x convNC sliver
// panel (ConvGeom.PackColsPanel), the microkernel consumes the panel, and
// the panel is reused for the next convNC output positions: only one
// L2-sized panel ever exists.
//
// Determinism contract: unlike the blocked MatMul (which re-associates
// across KC blocks), the fused path keeps a SINGLE full-K ascending
// accumulation chain per output element followed by one bias add — exactly
// the order the legacy conv kernel uses — so fused output is bitwise
// identical to the legacy path (and therefore to `-tags nofuse` builds),
// pinned by the fuse tests in internal/nn and internal/binary. Parallelism
// is over gemmMR-row output-channel strips only, so worker count and chunk
// boundaries cannot change any element's chain.

// convNC is the position-tile width of the fused-convolution panel: at
// most convNC x K packed values live at a time, never the full patch
// matrix. 64 positions keeps the panel (64*K floats; 147 KiB at AlexNet
// conv2's K=576) inside L2 while still amortizing each pack over OutC
// kernel rows.
const convNC = 64

// ConvPanelLen returns the panel length (in float32s) ConvGemmState needs
// for a convolution with k = InC*KH*KW kernel elements and p = outH*outW
// output positions.
func ConvPanelLen(k, p int) int {
	nc := min(convNC, p)
	ns := (nc + gemmNR - 1) / gemmNR
	return k * ns * gemmNR
}

// ConvGemmState drives the fused forward for one sample:
//
//	Out (OutC x P) = W (OutC x K) x im2col(Img)^T (K x P)  [+ Bias]
//
// The struct is embedded in the conv layers and reused across calls so a
// steady-state serving replica performs no per-forward allocations: the
// ParallelFor body is a method value created once, and Panel is
// caller-owned (arena-backed on serving replicas). Not safe for concurrent
// use; each replica owns its own state.
type ConvGemmState struct {
	G    ConvGeom
	OutC int
	W    []float32 // (OutC x K) row-major weights
	Bias []float32 // per-output-channel bias; nil for none
	// Scale, when non-nil, folds XNOR-Net input binarization into the
	// pack: the panel receives sign(v)*Scale[pos] (sign(0) = +1) instead
	// of the raw patch value. nil for full-precision convolutions.
	Scale []float32
	Panel []float32 // caller-owned scratch, >= ConvPanelLen(K, P) floats
	Img   []float32 // current input sample, InC*InH*InW
	Out   []float32 // current output, OutC*P

	k, p, jc, nc int
	kern         func(lo, hi int)
}

// Run executes the fused forward for the current Img into Out.
func (st *ConvGemmState) Run() {
	st.k = st.G.InC * st.G.KH * st.G.KW
	st.p = st.G.OutH() * st.G.OutW()
	if len(st.Panel) < ConvPanelLen(st.k, st.p) {
		panic("tensor: ConvGemmState panel too small")
	}
	if st.kern == nil {
		st.kern = st.runStrips
	}
	strips := (st.OutC + gemmMR - 1) / gemmMR
	for jc := 0; jc < st.p; jc += convNC {
		st.jc = jc
		st.nc = min(convNC, st.p-jc)
		st.G.PackColsPanel(st.Panel, st.Img, jc, st.nc, st.Scale)
		ParallelFor(strips, st.kern)
	}
}

// runStrips is the ParallelFor body: output-channel strips [lo, hi) of the
// current panel. Strips write disjoint Out rows. Stores are assignments
// plus one bias add — the fused path runs one full-K block — which is what
// keeps the output bitwise identical to the legacy `s + b` conv kernel.
func (st *ConvGemmState) runStrips(lo, hi int) {
	ns := (st.nc + gemmNR - 1) / gemmNR
	k := st.k
	for s := lo; s < hi; s++ {
		i0 := s * gemmMR
		for sv := 0; sv < ns; sv++ {
			j0 := st.jc + sv*gemmNR
			w := min(gemmNR, st.nc-sv*gemmNR)
			bp := st.Panel[sv*k*gemmNR:][: k*gemmNR : k*gemmNR]
			if i0+gemmMR <= st.OutC {
				a0 := st.W[i0*k:][:k]
				a1 := st.W[(i0+1)*k:][:k]
				a2 := st.W[(i0+2)*k:][:k]
				a3 := st.W[(i0+3)*k:][:k]
				var acc [gemmMR][gemmNR]float32
				kern4x8(a0, a1, a2, a3, bp, &acc)
				for r := 0; r < gemmMR; r++ {
					var b float32
					if st.Bias != nil {
						b = st.Bias[i0+r]
					}
					cr := st.Out[(i0+r)*st.p+j0:]
					for j := 0; j < w; j++ {
						cr[j] = acc[r][j] + b
					}
				}
				continue
			}
			for i := i0; i < st.OutC; i++ {
				var acc [gemmNR]float32
				kern1x8(st.W[i*k:][:k], bp, &acc)
				var b float32
				if st.Bias != nil {
					b = st.Bias[i]
				}
				cr := st.Out[i*st.p+j0:]
				for j := 0; j < w; j++ {
					cr[j] = acc[j] + b
				}
			}
		}
	}
}
