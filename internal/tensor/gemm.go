package tensor

import "sync"

// Cache-blocked GEMM in the GotoBLAS/BLIS style. The operand B is packed
// one (gemmKC x gemmNC) block at a time into an interleaved sliver panel —
// gemmNR consecutive output columns laid out depth-major so one vector
// load reads a depth step of all gemmNR columns — and a gemmMR x gemmNR
// register-blocked microkernel (AVX on amd64, pure Go elsewhere; see
// gemm_kernels*.go) accumulates C tiles while reading A directly from its
// row-major rows (A rows are contiguous already, so a separate A pack buys
// nothing at these sizes). The panel (256 KiB) fits comfortably in L2 and
// B is read from memory once per panel instead of once per C row — the
// failure mode of the 4-wide unrolled kernel on rest-of-AlexNet shapes.
// The scalar unrolled kernel already sits at the scalar ceiling of ~1
// multiply-add per cycle (mul and add share the two FP ports), so the
// headroom is in the vector units: the microkernel vectorizes across
// output columns, which speeds up every lane without touching any lane's
// accumulation order.
//
// Determinism contract: every output element is accumulated in a fixed
// order — for each KC block in ascending order, a single ascending-k chain
// into a register lane, then one `+=` into C. The AVX kernel uses
// vmulps+vaddps (never FMA), so each vector lane rounds exactly like the
// scalar expression and the asm and Go kernels are bitwise
// interchangeable. Parallelism is over gemmMR-row strips of C only, so
// chunk boundaries cannot change any element's accumulation order: serial,
// parallel, and any worker count are bitwise identical (pinned by
// TestMatMulBlockedSerialParallelBitwise and the matMulBlockedRef
// cross-check in gemm_test.go). The result is NOT bitwise identical to
// MatMulUnrolledInto — the per-KC-block partial sums associate differently
// — which is why MatMulInto's dispatch is pinned by a tolerance test,
// while the fused convolution path (convgemm.go) uses a single full-K
// chain and stays bitwise identical to the legacy conv kernel.
const (
	gemmMR = 4   // microkernel height: rows of A/C per register tile
	gemmNR = 8   // microkernel width: one AVX vector of output columns
	gemmKC = 256 // K blocking: one packed sliver is kcLen*gemmNR*4 <= 8 KiB
	gemmNC = 256 // N blocking: one panel is gemmKC*gemmNC floats = 256 KiB, L2-resident
)

// blockedMinWork is the k*n product below which MatMulInto keeps the
// 4-wide unrolled kernel: the whole B operand already fits in L1/L2 and
// the pack step would be pure overhead.
const blockedMinWork = 1 << 15

// gemmPanelPool recycles pack buffers across MatMulInto calls so the
// training loops that hammer MatMul stay allocation-free at steady state.
// The fused convolution path does not use it — serving replicas own their
// panels (arena-backed), so the hot path never touches a sync.Pool.
var gemmPanelPool = sync.Pool{
	New: func() any {
		buf := make([]float32, gemmKC*gemmNC)
		return &buf
	},
}

// packPanel copies the B block rows [kc, kc+kcLen) x columns [jc, jc+nc)
// into panel slivers: panel[(sv*kcLen+kk)*gemmNR+r] = B[kc+kk][jc+sv*gemmNR+r].
// Lanes past nc are zero-filled so the microkernel never branches on width
// (the zero lanes accumulate values that are simply not stored).
func packPanel(panel, b []float32, n, kc, kcLen, jc, nc int) {
	ns := (nc + gemmNR - 1) / gemmNR
	for sv := 0; sv < ns; sv++ {
		j0 := jc + sv*gemmNR
		w := min(gemmNR, jc+nc-j0)
		dst := panel[sv*kcLen*gemmNR:][: kcLen*gemmNR : kcLen*gemmNR]
		if w == gemmNR {
			for kk := 0; kk < kcLen; kk++ {
				src := b[(kc+kk)*n+j0 : (kc+kk)*n+j0+gemmNR]
				d := dst[kk*gemmNR : kk*gemmNR+gemmNR]
				copy(d, src)
			}
			continue
		}
		for kk := 0; kk < kcLen; kk++ {
			src := b[(kc+kk)*n+j0:]
			d := dst[kk*gemmNR : kk*gemmNR+gemmNR]
			for r := 0; r < w; r++ {
				d[r] = src[r]
			}
			for r := w; r < gemmNR; r++ {
				d[r] = 0
			}
		}
	}
}

// MatMulBlockedInto computes dst = a x b with the cache-blocked kernel
// unconditionally (MatMulInto dispatches here above blockedMinWork; this
// entry point exists for benchmarks and the cross-impl equivalence tests).
// dst must not alias a or b.
func MatMulBlockedInto(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if b.Shape[0] != k || dst.Shape[0] != m || dst.Shape[1] != n {
		panic("tensor: MatMulBlockedInto shape mismatch")
	}
	bufp := gemmPanelPool.Get().(*[]float32)
	matMulBlocked(dst.Data, a.Data, b.Data, m, k, n, *bufp)
	gemmPanelPool.Put(bufp)
}

// matMulBlocked is the blocked driver: loop over NC column blocks, then KC
// depth blocks; pack the B panel once per (jc, kc); parallelize the C
// update over gemmMR-row strips. The strip body is one closure reused
// across every ParallelFor invocation — the block coordinates it reads are
// only mutated between fully-joined ParallelFor calls.
func matMulBlocked(cd, ad, bd []float32, m, k, n int, panel []float32) {
	for i := range cd[: m*n : m*n] {
		cd[i] = 0
	}
	strips := (m + gemmMR - 1) / gemmMR
	var jc, nc, kc, kcLen int
	body := func(lo, hi int) {
		ns := (nc + gemmNR - 1) / gemmNR
		for s := lo; s < hi; s++ {
			i0 := s * gemmMR
			for sv := 0; sv < ns; sv++ {
				j0 := sv * gemmNR
				w := min(gemmNR, nc-j0)
				bp := panel[sv*kcLen*gemmNR:][: kcLen*gemmNR : kcLen*gemmNR]
				if i0+gemmMR <= m {
					a0 := ad[i0*k+kc:][:kcLen]
					a1 := ad[(i0+1)*k+kc:][:kcLen]
					a2 := ad[(i0+2)*k+kc:][:kcLen]
					a3 := ad[(i0+3)*k+kc:][:kcLen]
					var acc [gemmMR][gemmNR]float32
					kern4x8(a0, a1, a2, a3, bp, &acc)
					for r := 0; r < gemmMR; r++ {
						cr := cd[(i0+r)*n+jc+j0:]
						for j := 0; j < w; j++ {
							cr[j] += acc[r][j]
						}
					}
					continue
				}
				for i := i0; i < m; i++ {
					var acc [gemmNR]float32
					kern1x8(ad[i*k+kc:][:kcLen], bp, &acc)
					cr := cd[i*n+jc+j0:]
					for j := 0; j < w; j++ {
						cr[j] += acc[j]
					}
				}
			}
		}
	}
	for jc = 0; jc < n; jc += gemmNC {
		nc = min(gemmNC, n-jc)
		for kc = 0; kc < k; kc += gemmKC {
			kcLen = min(gemmKC, k-kc)
			packPanel(panel, bd, n, kc, kcLen, jc, nc)
			ParallelFor(strips, body)
		}
	}
}

// MatMulTransBInto computes dst = a x b^T for a (m x k) and b (n x k) into
// a preallocated (m x n) dst, parallelized over output columns. Every
// output element is one ascending-k dot product — the same chain as the
// historical MatMulTransB loop — so the result is bitwise identical to the
// serial scalar reference for any worker count or chunk boundary.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic("tensor: MatMulTransBInto shape mismatch")
	}
	ParallelFor(n, func(lo, hi int) { TransBRange(dst, a, b, lo, hi) })
}

// TransBRange computes output columns [jLo, jHi) of dst = a x b^T. It is
// exported (rather than folded into MatMulTransBInto) so callers that must
// not allocate per forward — nn.Linear's serving path drives ParallelFor
// with a persistent closure — can chunk the column range themselves. Four
// B rows are processed per sweep of A so each A row is read once per four
// output columns; per-element values are single-chain dot products and do
// not depend on jLo alignment.
func TransBRange(dst, a, b *Tensor, jLo, jHi int) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	ad, bd, cd := a.Data, b.Data, dst.Data
	j := jLo
	for ; j+4 <= jHi; j += 4 {
		b0 := bd[j*k:][:k]
		b1 := bd[(j+1)*k:][:k]
		b2 := bd[(j+2)*k:][:k]
		b3 := bd[(j+3)*k:][:k]
		for i := 0; i < m; i++ {
			ar := ad[i*k:][:k]
			var q0, q1, q2, q3 float32
			for kk, av := range ar {
				q0 += av * b0[kk]
				q1 += av * b1[kk]
				q2 += av * b2[kk]
				q3 += av * b3[kk]
			}
			cr := cd[i*n+j : i*n+j+4]
			cr[0], cr[1], cr[2], cr[3] = q0, q1, q2, q3
		}
	}
	for ; j < jHi; j++ {
		br := bd[j*k:][:k]
		for i := 0; i < m; i++ {
			ar := ad[i*k:][:k]
			var s float32
			for kk, av := range ar {
				s += av * br[kk]
			}
			cd[i*n+j] = s
		}
	}
}
