package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "requests", Label{"model", "demo"})
	b := r.Counter("reqs_total", "requests", Label{"model", "demo"})
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	c := r.Counter("reqs_total", "requests", Label{"model", "other"})
	if a == c {
		t.Fatal("distinct labels must return distinct counters")
	}
	a.Inc()
	a.Add(2)
	if a.Value() != 3 || c.Value() != 0 {
		t.Fatalf("counter values: %d, %d", a.Value(), c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // first bucket (le=0.001)
	h.Observe(0.001)  // inclusive upper bound: still le=0.001
	h.Observe(0.05)   // le=0.1
	h.Observe(3)      // +Inf overflow
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("layout: %v / %v", bounds, counts)
	}
	want := []int64{2, 0, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("bucket counts = %v, want %v", counts, want)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 3.05 || got > 3.06 {
		t.Fatalf("sum = %v", got)
	}
	h.ObserveDuration(2 * time.Millisecond)
	if h.Count() != 5 {
		t.Fatal("ObserveDuration must count")
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("lcrs_requests_total", "Requests served.", Label{"model", "demo"}).Add(7)
	h := r.Histogram("lcrs_stage_seconds", "Stage latency.",
		[]float64{0.001, 0.01}, Label{"model", "demo"}, Label{"stage", "forward"})
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lcrs_requests_total counter",
		`lcrs_requests_total{model="demo"} 7`,
		"# TYPE lcrs_stage_seconds histogram",
		`lcrs_stage_seconds_bucket{model="demo",stage="forward",le="0.001"} 1`,
		`lcrs_stage_seconds_bucket{model="demo",stage="forward",le="0.01"} 1`,
		`lcrs_stage_seconds_bucket{model="demo",stage="forward",le="+Inf"} 2`,
		`lcrs_stage_seconds_sum{model="demo",stage="forward"} 0.5005`,
		`lcrs_stage_seconds_count{model="demo",stage="forward"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must be sorted by name: the counter comes first.
	if strings.Index(out, "lcrs_requests_total") > strings.Index(out, "lcrs_stage_seconds") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestExpositionStableAcrossScrapes(t *testing.T) {
	r := NewRegistry()
	for _, m := range []string{"b", "a", "c"} {
		r.Counter("x_total", "x", Label{"model", m}).Inc()
	}
	var one, two strings.Builder
	if err := r.WritePrometheus(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatal("scrapes of an unchanged registry must be byte-identical")
	}
	if !strings.Contains(one.String(), "model=\"a\"} 1\nx_total{model=\"b\"}") {
		t.Fatalf("series not sorted by labels:\n%s", one.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Label{"v", "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", sb.String())
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "")
	for _, fn := range []func(){
		func() { r.Counter("9bad", "") },
		func() { r.Counter("ok_total", "", Label{"0key", "v"}) },
		func() { r.Histogram("ok_total", "", nil) }, // type conflict with counter
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGauges(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("temp", "Temperature.", Label{"room", "a"})
	if g2 := r.Gauge("temp", "Temperature.", Label{"room", "a"}); g2 != g {
		t.Fatal("same (name, labels) must return the same gauge")
	}
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge value = %v", g.Value())
	}
	calls := 0
	r.GaugeFunc("ticks", "Scrape-time reading.", func() float64 {
		calls++
		return float64(40 + calls)
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE temp gauge",
		`temp{room="a"} 1.5`,
		"# TYPE ticks gauge",
		"ticks 41",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The function is re-evaluated per scrape, and re-registration keeps
	// the first function.
	r.GaugeFunc("ticks", "Scrape-time reading.", func() float64 { return -1 })
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ticks 42\n") {
		t.Fatalf("GaugeFunc not re-evaluated (or clobbered):\n%s", sb.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{1, 2, 4})
	// Empty histogram: the NoData sentinel, never NaN and never a
	// misleading 0 (SLO math must distinguish "no traffic" from "fast").
	if got := h.Quantile(0.5); got != NoData {
		t.Fatalf("empty histogram quantile = %v, want NoData (%v)", got, NoData)
	}
	if math.IsNaN(h.Quantile(0.99)) {
		t.Fatal("empty histogram quantile is NaN; the sentinel must be NaN-free")
	}
	// Single populated bucket: quantiles interpolate across that bucket's
	// width and never leave it.
	h.Observe(1.5) // (1,2] bucket only
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("single-bucket p0 = %v, want lower edge 1", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Fatalf("single-bucket p100 = %v, want upper bound 2", got)
	}
	if got := h.Quantile(0.5); got != 1.5 {
		t.Fatalf("single-bucket p50 = %v, want midpoint 1.5", got)
	}

	h = r.Histogram("q2_seconds", "", []float64{1, 2, 4})
	// 10 observations uniform in (0,1], 10 in (1,2].
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1 (boundary between the halves)", got)
	}
	if got := h.Quantile(0.25); got != 0.5 {
		t.Fatalf("p25 = %v, want 0.5 (middle of first bucket)", got)
	}
	if got := h.Quantile(0.75); got != 1.5 {
		t.Fatalf("p75 = %v, want 1.5 (middle of second bucket)", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 = %v, want 0", got)
	}
	h.Observe(100) // lands in +Inf overflow
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("p100 with overflow = %v, want saturation at last bound 4", got)
	}
}

func TestRegisterProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r, "v1.2.3")
	RegisterProcessMetrics(r, "v1.2.3") // idempotent
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lcrs_build_info{go_version="`,
		`version="v1.2.3"} 1`,
		"# TYPE lcrs_process_goroutines gauge",
		"lcrs_process_heap_inuse_bytes",
		"lcrs_process_gc_pause_seconds_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("process metrics missing %q:\n%s", want, out)
		}
	}
}

// Concurrent observation and scraping must be race-free and lose nothing:
// the counter and histogram totals must equal the number of operations.
func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	h := r.Histogram("conc_seconds", "", LatencyBuckets())
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	// Scrape while observers run; output validity is checked after.
	for i := 0; i < 10; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	want := float64(workers*per) * 0.001
	if got := h.Sum(); got < want*0.999 || got > want*1.001 {
		t.Fatalf("histogram sum = %v, want ~%v", got, want)
	}
}
