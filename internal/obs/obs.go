// Package obs provides the serving stack's observability primitives:
// lock-cheap atomic counters and fixed-bucket latency histograms collected
// in a registry that renders the Prometheus text exposition format
// (version 0.0.4). The edge server threads a per-request trace through
// its handler stages and observes each stage into histograms from this
// package; GET /metrics on the edge server serves the registry.
//
// Metrics are get-or-create: asking the registry for a (name, labels)
// pair twice returns the same instance, so hot paths resolve their
// handles once at registration time and then touch only atomics. No
// metric is ever unregistered; a registry lives as long as its server.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep Prometheus semantics; this
// is not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value (float64 bits in an atomic).
type Gauge struct {
	v atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Add increments the gauge by d (CAS loop, safe under concurrency).
func (g *Gauge) Add(d float64) {
	for {
		old := g.v.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.v.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose inclusive upper bound is >= the value, or in the implicit
// +Inf overflow bucket. Buckets, count and sum are all atomics, so
// Observe never takes a lock and concurrent snapshots are per-field
// consistent (the usual Prometheus scrape semantics).
type Histogram struct {
	bounds  []float64 // strictly increasing inclusive upper bounds
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing: %v", bounds))
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds, the Prometheus base unit.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets snapshots the bucket layout: the inclusive upper bounds and the
// per-bucket (non-cumulative) observation counts, with the implicit +Inf
// overflow bucket as the final count entry (len(counts) == len(bounds)+1).
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	counts = make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return h.bounds, counts
}

// NoData is returned by quantile estimators when there are no
// observations to estimate from. It is a plain finite sentinel (never
// NaN, so it survives JSON encoding and float comparisons) and is
// negative, which no latency/entropy histogram in this codebase can
// produce, so `q < 0` is the complete "no data" test. SLO evaluation
// depends on the distinction: an empty window means "no traffic", not
// "p99 = 0s", and must park the objective in its no_data state instead
// of reporting a vacuously healthy latency.
const NoData = -1

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts
// with linear interpolation inside the holding bucket — the usual
// Prometheus histogram_quantile estimate, so dashboards and the JSON
// views agree. Edge cases, all deterministic:
//   - Empty histogram: returns NoData (never NaN or a misleading 0).
//   - Single populated bucket: every quantile interpolates linearly
//     across that bucket's width (from the previous bound, or 0 for the
//     first bucket), so q=0 gives the bucket's lower edge and q=1 its
//     upper bound — the estimate never leaves the bucket that holds all
//     the data.
//   - Observations beyond the last bound saturate to it.
func (h *Histogram) Quantile(q float64) float64 {
	_, counts := h.Buckets()
	return quantileFromCounts(h.bounds, counts, q)
}

// quantileFromCounts is the shared estimator behind Histogram.Quantile
// and WindowedHistogram.Quantile: counts has one entry per bound plus
// the +Inf overflow bucket last. Returns NoData when counts are all
// zero.
func quantileFromCounts(bounds []float64, counts []int64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return NoData
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts[:len(counts)-1] {
		cum += c
		if float64(cum) >= rank {
			hi := bounds[i]
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			} else if hi < 0 {
				lo = hi // negative first bound: no interpolation anchor
			}
			if c == 0 {
				return hi
			}
			within := rank - float64(cum-c)
			return lo + (hi-lo)*within/float64(c)
		}
	}
	// Rank lands in the +Inf overflow bucket: saturate to the last bound.
	return bounds[len(bounds)-1]
}

// LatencyBuckets returns the default latency bucket bounds in seconds:
// roughly logarithmic from 50µs to 10s, sized for the edge serving path
// where a binary-branch forward is tens of microseconds and a saturated
// queue can hold a request for seconds.
func LatencyBuckets() []float64 {
	return []float64{
		0.00005, 0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// Label is one metric dimension. Labels are ordered as given; callers
// should use a consistent order per metric name so series line up.
type Label struct {
	Key, Value string
}

// metricKind discriminates exposition rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindHistogram
	kindGauge
	kindGaugeFunc
)

// series is one labelled instance of a family.
type series struct {
	labels []Label
	c      *Counter
	h      *Histogram
	g      *Gauge
	fn     func() float64 // kindGaugeFunc: evaluated at scrape time
}

// family groups every series of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram families only
	series map[string]*series
}

// Registry collects metric families and renders them in the Prometheus
// text format. Metric creation takes a lock; using a metric never does.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter returns the counter for (name, labels), creating it on first
// use. help is recorded on first creation of the family. The name and
// label keys must be valid Prometheus identifiers; violations panic, as
// they are programming errors, not runtime conditions.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, nil, labels)
	return s.c
}

// Histogram returns the histogram for (name, labels) with the given
// inclusive upper bounds, creating it on first use. Every series of one
// family shares the family's bounds (the bounds of the first creation
// win; asking again with different bounds panics).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, kindHistogram, bounds, labels)
	return s.h
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, nil, labels)
	return s.g
}

// GaugeFunc registers fn as the value source for (name, labels): it is
// called once per scrape, under no lock, so it must be cheap and
// goroutine-safe. Registering the same (name, labels) twice keeps the
// first function. Used for process-health readings (goroutines, heap)
// that are snapshots of runtime state rather than accumulated values.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if fn == nil {
		panic(fmt.Sprintf("obs: nil GaugeFunc for %q", name))
	}
	r.lookupFn(name, help, fn, labels)
}

func (r *Registry) lookup(name, help string, kind metricKind, bounds []float64, labels []Label) *series {
	return r.lookupKind(name, help, kind, bounds, nil, labels)
}

func (r *Registry) lookupFn(name, help string, fn func() float64, labels []Label) {
	r.lookupKind(name, help, kindGaugeFunc, nil, fn, labels)
}

func (r *Registry) lookupKind(name, help string, kind metricKind, bounds []float64, fn func() float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		if kind == kindHistogram {
			f.bounds = append([]float64(nil), bounds...)
		}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered with conflicting types", name))
	}
	if kind == kindHistogram && !equalBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q registered with conflicting bounds", name))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: append([]Label(nil), labels...)}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindHistogram:
			s.h = newHistogram(f.bounds)
		case kindGauge:
			s.g = &Gauge{}
		case kindGaugeFunc:
			s.fn = fn
		}
		f.series[key] = s
	}
	return s
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name and series by label set, so output is stable
// for golden tests and diffing between scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind.String())
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels), s.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels), formatFloat(s.g.Value()))
			case kindGaugeFunc:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels), formatFloat(s.fn()))
			case kindHistogram:
				bounds, counts := s.h.Buckets()
				var cum int64
				for i, le := range bounds {
					cum += counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						f.name, renderLabels(append(s.labels, Label{"le", formatFloat(le)})), cum)
				}
				cum += counts[len(counts)-1]
				fmt.Fprintf(&b, "%s_bucket%s %d\n",
					f.name, renderLabels(append(s.labels, Label{"le", "+Inf"})), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, renderLabels(s.labels), formatFloat(s.h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, renderLabels(s.labels), s.h.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (k metricKind) String() string {
	switch k {
	case kindHistogram:
		return "histogram"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "counter"
	}
}

// labelKey serializes labels into a map key (and sort key) for series.
func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// renderLabels formats {k1="v1",k2="v2"} with escaped values, or the
// empty string when there are no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float the way Prometheus expects: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
