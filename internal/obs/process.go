package obs

import (
	"runtime"
	"sync"
	"time"
)

// Process-health gauges. These are deliberately opt-in (a plain function,
// not part of NewRegistry) because they change between scrapes even on an
// idle server, which would break the byte-stable idle-scrape guarantee
// the edge metrics goldens rely on. Binaries that want them — lcrs-edge
// does — call RegisterProcessMetrics on their server's registry.

// memSampler caches one runtime.ReadMemStats per ttl so a scrape reading
// several gauges triggers at most one stop-the-world, and back-to-back
// scrapes (load balancer + Prometheus) share a reading.
type memSampler struct {
	mu   sync.Mutex
	at   time.Time
	ttl  time.Duration
	stat runtime.MemStats
}

func (s *memSampler) read() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.at) > s.ttl {
		runtime.ReadMemStats(&s.stat)
		s.at = now
	}
	return s.stat
}

// RegisterProcessMetrics adds process-health gauges to r:
//
//	lcrs_build_info{go_version,version} 1
//	lcrs_process_goroutines
//	lcrs_process_heap_inuse_bytes
//	lcrs_process_gc_pause_seconds_total
//
// version is the binary's own version string ("dev" when unset). All
// values are read at scrape time; memory stats are cached for 250ms so
// one scrape costs at most one ReadMemStats.
func RegisterProcessMetrics(r *Registry, version string) {
	if version == "" {
		version = "dev"
	}
	r.Gauge("lcrs_build_info",
		"Constant 1, labelled with build and runtime version.",
		Label{"go_version", runtime.Version()}, Label{"version", version}).Set(1)
	r.GaugeFunc("lcrs_process_goroutines",
		"Live goroutine count.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	ms := &memSampler{ttl: 250 * time.Millisecond}
	r.GaugeFunc("lcrs_process_heap_inuse_bytes",
		"Bytes of heap memory in use (runtime.MemStats.HeapInuse).",
		func() float64 { return float64(ms.read().HeapInuse) })
	r.GaugeFunc("lcrs_process_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time in seconds.",
		func() float64 { return float64(ms.read().PauseTotalNs) / 1e9 })
}
