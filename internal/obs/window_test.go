package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for deterministic window
// tests. The mutex makes it safe to advance from one goroutine while
// writers read it from others.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestWindowedCounterRotation(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedCounter(10*time.Second, 10) // 1s buckets
	w.SetClock(clk.Now)

	// 3 events now, 2 events 4s later.
	w.Add(3)
	clk.Advance(4 * time.Second)
	w.Add(2)

	if got := w.Total(); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
	if got := w.TotalWithin(2 * time.Second); got != 2 {
		t.Fatalf("TotalWithin(2s) = %d, want 2 (only the recent burst)", got)
	}

	// Advance until the first burst's bucket leaves the window: its epoch
	// is now-4s, so after 6 more seconds it is exactly 10s old and out.
	clk.Advance(7 * time.Second)
	if got := w.Total(); got != 2 {
		t.Fatalf("Total after first burst expired = %d, want 2", got)
	}
	// And until everything is out.
	clk.Advance(10 * time.Second)
	if got := w.Total(); got != 0 {
		t.Fatalf("Total after full expiry = %d, want 0", got)
	}
}

// Ring slots are recycled in place: an epoch landing on the same slot as
// an expired one must reset the count, not accumulate into stale data.
func TestWindowedCounterBucketRecycle(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedCounter(4*time.Second, 4) // 1s buckets, ring of 4
	w.SetClock(clk.Now)

	w.Add(100)
	// 4 seconds later the same ring slot is reused for a new epoch.
	clk.Advance(4 * time.Second)
	w.Add(1)
	if got := w.Total(); got != 1 {
		t.Fatalf("recycled slot Total = %d, want 1 (stale 100 must be reset)", got)
	}
}

func TestWindowedCounterRate(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedCounter(10*time.Second, 10)
	w.SetClock(clk.Now)

	// 20 events over 2 seconds on a counter only 2 seconds old: the rate
	// divisor is the covered wall time (warm-up aware), not the full
	// 10s window — a fresh counter under load reports its true rate.
	w.Add(10)
	clk.Advance(2 * time.Second)
	w.Add(10)
	rate := w.Rate()
	if rate < 9 || rate > 11 {
		t.Fatalf("warm-up Rate = %v, want ~10/s (covered-duration divisor)", rate)
	}

	// Once the counter has aged past the window, the divisor is the wall
	// time the included buckets span — between 9 and 10 seconds for a
	// 10x1s ring, depending on where inside the current bucket now falls
	// (bucket-granular coverage, per the package precision contract).
	clk.Advance(20 * time.Second)
	w.Add(30)
	rate = w.Rate()
	if rate < 2.9 || rate > 30.0/9.0+0.01 {
		t.Fatalf("steady-state Rate = %v, want ~3/s (30 events over 9-10s coverage)", rate)
	}
	clk.Advance(500 * time.Millisecond)
	rate = w.Rate()
	if rate < 3.0 || rate > 3.2 {
		t.Fatalf("mid-bucket Rate = %v, want ~3.16/s (30 events / 9.5s coverage)", rate)
	}
}

func TestWindowedHistogramQuantile(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedHistogram([]float64{1, 2, 4}, 10*time.Second, 10)
	w.SetClock(clk.Now)

	// Empty window: the same NoData contract as Histogram.Quantile.
	if got := w.Quantile(0.99, 0); got != NoData {
		t.Fatalf("empty window quantile = %v, want NoData", got)
	}

	// Old slow observations, then fast recent ones: the trailing window
	// must forget the slow phase once it expires.
	for i := 0; i < 10; i++ {
		w.Observe(3.5) // (2,4] bucket
	}
	clk.Advance(5 * time.Second)
	for i := 0; i < 10; i++ {
		w.Observe(0.5) // (0,1] bucket
	}

	// Full window sees both phases: p50 on 10+10 across (0,1] and (2,4]
	// lands on the first bucket's upper bound.
	if got := w.Quantile(0.5, 0); got != 1 {
		t.Fatalf("full-window p50 = %v, want 1", got)
	}
	// Trailing 2s sees only the fast phase.
	if got := w.Quantile(0.99, 2*time.Second); got > 1 {
		t.Fatalf("trailing-2s p99 = %v, want <= 1 (slow phase excluded)", got)
	}
	if got := w.Count(2 * time.Second); got != 10 {
		t.Fatalf("trailing-2s Count = %d, want 10", got)
	}

	// Expire the slow phase entirely (its bucket is 5s older).
	clk.Advance(6 * time.Second)
	if got := w.Quantile(1, 0); got != 1 {
		t.Fatalf("p100 after slow phase expired = %v, want 1", got)
	}
	counts, count, sum := w.Snapshot(0)
	if count != 10 || sum != 5 {
		t.Fatalf("Snapshot count=%d sum=%v, want 10 and 5.0", count, sum)
	}
	if counts[0] != 10 || counts[2] != 0 {
		t.Fatalf("Snapshot counts = %v, want the (0,1] bucket only", counts)
	}

	// Everything expires.
	clk.Advance(11 * time.Second)
	if got := w.Quantile(0.5, 0); got != NoData {
		t.Fatalf("fully expired quantile = %v, want NoData", got)
	}
}

// Boundary correctness at a bucket rotation: an observation landing
// exactly on an epoch edge belongs to the new epoch and must survive the
// full window length from that edge.
func TestWindowedRotationBoundary(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedCounter(4*time.Second, 4)
	w.SetClock(clk.Now)

	// Land exactly on a bucket boundary.
	clk.Advance(time.Second - time.Duration(clk.Now().UnixNano()%int64(time.Second)))
	if clk.Now().UnixNano()%int64(time.Second) != 0 {
		t.Fatal("test setup: not on a bucket boundary")
	}
	w.Inc()
	// 3.999s later the observation's bucket is still inside the window...
	clk.Advance(4*time.Second - time.Millisecond)
	if got := w.Total(); got != 1 {
		t.Fatalf("Total just inside the window = %d, want 1", got)
	}
	// ...and at +4s it has aged out (bucket-granular: the whole bucket
	// leaves together).
	clk.Advance(time.Millisecond)
	if got := w.Total(); got != 0 {
		t.Fatalf("Total at window edge = %d, want 0", got)
	}
}

// Concurrent observe/rotate/snapshot under -race: many writers hammer a
// counter and a histogram while the clock advances through several full
// ring rotations and readers snapshot continuously. The assertions are
// loose by design (the bounded-skew contract allows edge loss); the
// point is that the race detector sees every interleaving.
func TestWindowedConcurrent(t *testing.T) {
	clk := newFakeClock()
	wc := NewWindowedCounter(time.Second, 10)
	wh := NewWindowedHistogram([]float64{0.5, 1}, time.Second, 10)
	wc.SetClock(clk.Now)
	wh.SetClock(clk.Now)

	const writers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					wc.Inc()
					wh.Observe(0.25)
				}
			}
		}()
	}
	// Readers snapshot while writers write.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = wc.Total()
					_ = wc.Rate()
					_, _, _ = wh.Snapshot(0)
					_ = wh.Quantile(0.99, 0)
				}
			}
		}()
	}
	// Drive three full ring rotations from the main goroutine.
	for i := 0; i < 30; i++ {
		clk.Advance(100 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if got := wc.Total(); got < 0 {
		t.Fatalf("counter Total went negative: %d", got)
	}
	if q := wh.Quantile(0.5, 0); q != NoData && (q < 0 || q > 1) {
		t.Fatalf("histogram quantile out of domain: %v", q)
	}
}

// After a burst stops, expiry needs no background goroutine: reads alone
// observe the decay to zero.
func TestWindowedDecayWithoutWriters(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowedCounter(2*time.Second, 4)
	w.SetClock(clk.Now)
	w.Add(7)
	clk.Advance(3 * time.Second)
	if got := w.Total(); got != 0 {
		t.Fatalf("Total after idle expiry = %d, want 0 without any maintenance writer", got)
	}
}
