package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Windowed primitives (DESIGN.md §16). The cumulative counters and
// histograms in this package answer "how many since boot"; SLO evaluation
// and A/B judging need "how many in the last N seconds". A windowed
// metric keeps a ring of fixed-duration buckets: the hot path lands an
// observation in the bucket covering now (a couple of atomic ops, no
// locks), and readers merge the buckets inside a trailing window into a
// rate or quantile. Buckets are recycled in place — a bucket whose epoch
// has rotated out of the window is claimed for the current epoch by the
// first writer to reach it — so a windowed metric's memory is fixed at
// construction and maintenance costs nothing when traffic stops.
//
// Precision contract: windows are statistical views, not ledgers.
//   - The trailing window rounds to bucket granularity: a query for the
//     last D seconds covers every bucket that overlaps (now-D, now], so
//     up to one bucket-duration of older observations may be included.
//   - At a bucket rotation, a writer racing the bucket's recycling can
//     have its single observation attributed to the wrong epoch or
//     dropped. The skew is bounded by the number of concurrently racing
//     writers at that instant and only matters at window edges; the
//     cumulative families remain exact and are the system of record.
//
// Determinism: both types read time through an injectable clock
// (SetClock), so tests and benchmarks can drive rotation explicitly and
// assert exact bucket contents.

// windowClock is the time source; a nil clock means time.Now.
type windowClock func() time.Time

// windowSpec validates and normalizes a window layout.
func windowSpec(window time.Duration, buckets int) (time.Duration, int) {
	if buckets <= 0 {
		panic(fmt.Sprintf("obs: window bucket count %d must be positive", buckets))
	}
	if window <= 0 || window%time.Duration(buckets) != 0 && window/time.Duration(buckets) <= 0 {
		panic(fmt.Sprintf("obs: window %v must be positive", window))
	}
	per := window / time.Duration(buckets)
	if per <= 0 {
		panic(fmt.Sprintf("obs: window %v too short for %d buckets", window, buckets))
	}
	return per, buckets
}

// WindowedCounter counts events over a trailing window: a ring of
// fixed-duration buckets, each an (epoch, count) pair of atomics. Add is
// lock-free; Total/Rate merge the buckets still inside the window.
type WindowedCounter struct {
	clock    atomic.Pointer[windowClock]
	bucketNS int64
	createNS int64
	buckets  []windowBucket
}

type windowBucket struct {
	epoch atomic.Int64
	count atomic.Int64
}

// NewWindowedCounter returns a counter covering the trailing window with
// the given number of ring buckets (finer buckets, smoother roll-off).
// window must divide evenly into buckets of positive duration.
func NewWindowedCounter(window time.Duration, buckets int) *WindowedCounter {
	per, n := windowSpec(window, buckets)
	w := &WindowedCounter{
		bucketNS: int64(per),
		buckets:  make([]windowBucket, n),
	}
	w.createNS = w.nowNS()
	// Epochs start at 0; mark every bucket as holding no epoch so epoch 0
	// observations are not confused with virgin buckets.
	for i := range w.buckets {
		w.buckets[i].epoch.Store(-1)
	}
	return w
}

// SetClock injects a time source (nil restores time.Now). Intended for
// tests; call before concurrent use. The creation time is re-read so
// warm-up-aware rates stay consistent with the injected timeline.
func (w *WindowedCounter) SetClock(clock func() time.Time) {
	if clock == nil {
		w.clock.Store(nil)
	} else {
		c := windowClock(clock)
		w.clock.Store(&c)
	}
	atomic.StoreInt64(&w.createNS, w.nowNS())
}

func (w *WindowedCounter) nowNS() int64 {
	if c := w.clock.Load(); c != nil {
		return (*c)().UnixNano()
	}
	return time.Now().UnixNano()
}

// Inc adds one to the current bucket.
func (w *WindowedCounter) Inc() { w.Add(1) }

// Add adds n to the bucket covering now, recycling the ring slot in place
// when its epoch has rotated out. Lock-free: the first writer of a new
// epoch claims the slot with a CAS; losers retry against the published
// epoch.
func (w *WindowedCounter) Add(n int64) {
	e := w.nowNS() / w.bucketNS
	b := &w.buckets[int(e%int64(len(w.buckets)))]
	for {
		be := b.epoch.Load()
		switch {
		case be == e:
			b.count.Add(n)
			return
		case be > e:
			// The slot already belongs to a newer epoch (clock skew between
			// writers): fold into it rather than lose the observation.
			b.count.Add(n)
			return
		default:
			if b.epoch.CompareAndSwap(be, e) {
				b.count.Store(n)
				return
			}
		}
	}
}

// Total returns the count over the full trailing window.
func (w *WindowedCounter) Total() int64 { return w.TotalWithin(w.Window()) }

// TotalWithin returns the count over the trailing d (rounded up to bucket
// granularity and clamped to the full window).
func (w *WindowedCounter) TotalWithin(d time.Duration) int64 {
	minE, maxE := w.epochRange(d)
	var total int64
	for i := range w.buckets {
		if e := w.buckets[i].epoch.Load(); e >= minE && e <= maxE {
			total += w.buckets[i].count.Load()
		}
	}
	return total
}

// Rate returns events per second over the full trailing window.
func (w *WindowedCounter) Rate() float64 { return w.RateWithin(w.Window()) }

// RateWithin returns events per second over the trailing d. The divisor
// is the wall time the included buckets actually cover — clamped to the
// metric's age, so a freshly created counter under load reports its true
// rate instead of diluting over an empty window.
func (w *WindowedCounter) RateWithin(d time.Duration) float64 {
	covered := w.coveredSeconds(d)
	if covered <= 0 {
		return 0
	}
	return float64(w.TotalWithin(d)) / covered
}

// Window returns the full trailing window this counter covers.
func (w *WindowedCounter) Window() time.Duration {
	return time.Duration(w.bucketNS * int64(len(w.buckets)))
}

// epochRange maps a trailing duration onto inclusive epoch bounds.
func (w *WindowedCounter) epochRange(d time.Duration) (minE, maxE int64) {
	if d <= 0 || d > w.Window() {
		d = w.Window()
	}
	now := w.nowNS()
	maxE = now / w.bucketNS
	minE = (now - int64(d)) / w.bucketNS
	if lowest := maxE - int64(len(w.buckets)) + 1; minE < lowest {
		minE = lowest
	}
	return minE, maxE
}

// coveredSeconds is the wall time the buckets of a trailing-d query span,
// clamped to the counter's age.
func (w *WindowedCounter) coveredSeconds(d time.Duration) float64 {
	minE, _ := w.epochRange(d)
	now := w.nowNS()
	start := minE * w.bucketNS
	if created := atomic.LoadInt64(&w.createNS); start < created {
		start = created
	}
	return float64(now-start) / float64(time.Second)
}

// WindowedHistogram is a fixed-bucket histogram over a trailing window: a
// ring of time slots, each holding its own value-bucket counts, count and
// sum. Observe is lock-free like WindowedCounter.Add; Quantile and the
// other readers merge the live slots into one snapshot first, so a
// windowed p99 is computed exactly the way Histogram.Quantile computes
// the cumulative one (shared interpolation, shared NoData sentinel).
type WindowedHistogram struct {
	clock    atomic.Pointer[windowClock]
	bucketNS int64
	bounds   []float64
	slots    []histSlot
}

type histSlot struct {
	epoch  atomic.Int64
	counts []atomic.Int64 // len(bounds)+1, +Inf overflow last
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// NewWindowedHistogram returns a histogram with the given inclusive upper
// bounds covering the trailing window with the given number of time
// slots.
func NewWindowedHistogram(bounds []float64, window time.Duration, buckets int) *WindowedHistogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing: %v", bounds))
		}
	}
	per, n := windowSpec(window, buckets)
	w := &WindowedHistogram{
		bucketNS: int64(per),
		bounds:   append([]float64(nil), bounds...),
		slots:    make([]histSlot, n),
	}
	for i := range w.slots {
		w.slots[i].epoch.Store(-1)
		w.slots[i].counts = make([]atomic.Int64, len(bounds)+1)
	}
	return w
}

// SetClock injects a time source (nil restores time.Now); for tests,
// before concurrent use.
func (w *WindowedHistogram) SetClock(clock func() time.Time) {
	if clock == nil {
		w.clock.Store(nil)
		return
	}
	c := windowClock(clock)
	w.clock.Store(&c)
}

func (w *WindowedHistogram) nowNS() int64 {
	if c := w.clock.Load(); c != nil {
		return (*c)().UnixNano()
	}
	return time.Now().UnixNano()
}

// Observe records one value into the slot covering now. Rotation recycles
// a slot in place: the claiming writer zeroes the value buckets before
// adding its own observation. A reader overlapping the zeroing can see a
// partially reset slot — the bounded-skew contract in the package doc.
func (w *WindowedHistogram) Observe(v float64) {
	e := w.nowNS() / w.bucketNS
	s := &w.slots[int(e%int64(len(w.slots)))]
	for {
		se := s.epoch.Load()
		if se >= e {
			break // live slot (or newer under clock skew): fold in
		}
		if s.epoch.CompareAndSwap(se, e) {
			for i := range s.counts {
				s.counts[i].Store(0)
			}
			s.count.Store(0)
			s.sum.Store(0)
			break
		}
	}
	i := searchBounds(w.bounds, v)
	s.counts[i].Add(1)
	s.count.Add(1)
	for {
		old := s.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (w *WindowedHistogram) ObserveDuration(d time.Duration) { w.Observe(d.Seconds()) }

// Window returns the full trailing window this histogram covers.
func (w *WindowedHistogram) Window() time.Duration {
	return time.Duration(w.bucketNS * int64(len(w.slots)))
}

// Snapshot merges the slots inside the trailing d into one mergeable
// bucket snapshot: per-bound counts (overflow last), total count and sum.
// d <= 0 or beyond the window snapshots the full window.
func (w *WindowedHistogram) Snapshot(d time.Duration) (counts []int64, count int64, sum float64) {
	if d <= 0 || d > w.Window() {
		d = w.Window()
	}
	now := w.nowNS()
	maxE := now / w.bucketNS
	minE := (now - int64(d)) / w.bucketNS
	if lowest := maxE - int64(len(w.slots)) + 1; minE < lowest {
		minE = lowest
	}
	counts = make([]int64, len(w.bounds)+1)
	for i := range w.slots {
		s := &w.slots[i]
		if e := s.epoch.Load(); e < minE || e > maxE {
			continue
		}
		for j := range counts {
			counts[j] += s.counts[j].Load()
		}
		count += s.count.Load()
		sum += math.Float64frombits(s.sum.Load())
	}
	return counts, count, sum
}

// Count returns the number of observations in the trailing d.
func (w *WindowedHistogram) Count(d time.Duration) int64 {
	_, count, _ := w.Snapshot(d)
	return count
}

// Quantile estimates the q-quantile over the trailing d with the same
// bucket interpolation as Histogram.Quantile, and the same empty-data
// contract: NoData (never NaN) when the window holds no observations, so
// SLO math can tell "no traffic" from "fast".
func (w *WindowedHistogram) Quantile(q float64, d time.Duration) float64 {
	counts, _, _ := w.Snapshot(d)
	return quantileFromCounts(w.bounds, counts, q)
}

// searchBounds returns the index of the first bound >= v (len(bounds) for
// the overflow bucket) — the shared bucketing rule of Histogram.Observe.
func searchBounds(bounds []float64, v float64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
