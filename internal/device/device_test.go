package device

import (
	"testing"
	"time"
)

func TestComputeTime(t *testing.T) {
	p := Profile{Name: "test", GFLOPS: 1}
	if got := p.ComputeTime(1e9); got != time.Second {
		t.Fatalf("1 GFLOP at 1 GFLOPS = %v, want 1s", got)
	}
	if got := p.ComputeTime(0); got != 0 {
		t.Fatalf("zero work = %v, want 0", got)
	}
}

func TestComputeTimeScalesWithThroughput(t *testing.T) {
	slow := Profile{Name: "slow", GFLOPS: 2}
	fast := Profile{Name: "fast", GFLOPS: 100}
	work := int64(4e9)
	ratio := float64(slow.ComputeTime(work)) / float64(fast.ComputeTime(work))
	if ratio < 49 || ratio > 51 {
		t.Fatalf("speed ratio = %v, want 50", ratio)
	}
}

func TestComputeTimePanicsOnBadProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-throughput profile did not panic")
		}
	}()
	Profile{Name: "broken"}.ComputeTime(1)
}

func TestStandardProfilesOrdered(t *testing.T) {
	if MobileBrowser().GFLOPS >= EdgeServer().GFLOPS {
		t.Fatal("edge server must be faster than the mobile browser")
	}
}
