package device

import (
	"math"
	"testing"
	"time"
)

func TestEnergyComponents(t *testing.T) {
	em := EnergyModel{ComputeJPerGFLOP: 2, RadioTxW: 3, RadioRxW: 1, IdleW: 0.5}
	if got := em.ComputeJ(5e8); math.Abs(got-1) > 1e-9 {
		t.Fatalf("ComputeJ = %v, want 1", got)
	}
	if got := em.TxJ(2 * time.Second); math.Abs(got-6) > 1e-9 {
		t.Fatalf("TxJ = %v, want 6", got)
	}
	if got := em.RxJ(time.Second); math.Abs(got-1) > 1e-9 {
		t.Fatalf("RxJ = %v, want 1", got)
	}
	if got := em.IdleJ(4 * time.Second); math.Abs(got-2) > 1e-9 {
		t.Fatalf("IdleJ = %v, want 2", got)
	}
	ie := InferenceEnergy{ComputeJ: 1, RadioJ: 2, IdleJ: 0.5}
	if ie.TotalJ() != 3.5 {
		t.Fatalf("TotalJ = %v", ie.TotalJ())
	}
}

func TestMobileEnergyPlausible(t *testing.T) {
	em := MobileEnergy()
	if em.ComputeJPerGFLOP <= 0 || em.RadioTxW <= em.RadioRxW/10 || em.IdleW <= 0 {
		t.Fatalf("implausible defaults: %+v", em)
	}
	// Transmitting is more expensive than receiving on cellular radios.
	if em.RadioTxW <= em.RadioRxW {
		t.Fatal("TX power must exceed RX power")
	}
}
