// Package device models the compute capability of the paper's execution
// targets. The paper measures a HUAWEI Mate 9 running Firefox (binary branch
// via the JS/WASM library) and an IBM X3640M4 edge server; neither is
// available here, so latency experiments charge compute as FLOPs divided by
// an effective throughput calibrated to land in the paper's measured ranges
// (see EXPERIMENTS.md). Binary layers already discount their FLOPs for
// 64-wide XNOR lanes, so one profile covers both float and binary stages.
package device

import (
	"fmt"
	"time"
)

// Profile is an execution target with an effective sustained throughput.
type Profile struct {
	// Name identifies the device in reports.
	Name string
	// GFLOPS is the effective throughput in billions of float operations
	// per second.
	GFLOPS float64
}

// ComputeTime returns how long the device needs for the given operation
// count.
func (p Profile) ComputeTime(flops int64) time.Duration {
	if p.GFLOPS <= 0 {
		panic(fmt.Sprintf("device: profile %q has non-positive throughput", p.Name))
	}
	return time.Duration(float64(flops) / (p.GFLOPS * 1e9) * float64(time.Second))
}

// MobileBrowser models the paper's phone browser: single-threaded
// 2017-era WASM without SIMD sustains a few hundred MFLOPS on convolution
// workloads — the resource ceiling that motivates the whole system.
func MobileBrowser() Profile { return Profile{Name: "mobile-web-browser", GFLOPS: 0.25} }

// EdgeServer models the paper's Xeon E5-2640 edge box.
func EdgeServer() Profile { return Profile{Name: "edge-server", GFLOPS: 50} }
