package device

import "time"

// EnergyModel estimates the mobile device's energy per recognition — the
// second resource the paper's abstract says edge-based recognition puts
// pressure on. Energy decomposes the same way latency does: compute energy
// proportional to FLOPs and radio energy proportional to airtime, the
// standard first-order smartphone model.
type EnergyModel struct {
	// ComputeJPerGFLOP is the energy per billion operations on the device.
	ComputeJPerGFLOP float64
	// RadioTxW and RadioRxW are transmit/receive radio powers.
	RadioTxW, RadioRxW float64
	// IdleW is the baseline draw while waiting for the edge.
	IdleW float64
}

// MobileEnergy returns a 4G-smartphone energy model: roughly 1 J per
// GFLOP of CPU work and cellular radio powers around 1-2 W.
func MobileEnergy() EnergyModel {
	return EnergyModel{ComputeJPerGFLOP: 1.0, RadioTxW: 1.8, RadioRxW: 1.2, IdleW: 0.4}
}

// ComputeJ returns the energy for flops of on-device work.
func (e EnergyModel) ComputeJ(flops int64) float64 {
	return e.ComputeJPerGFLOP * float64(flops) / 1e9
}

// TxJ returns the radio energy for an uplink of the given airtime.
func (e EnergyModel) TxJ(airtime time.Duration) float64 {
	return e.RadioTxW * airtime.Seconds()
}

// RxJ returns the radio energy for a downlink of the given airtime.
func (e EnergyModel) RxJ(airtime time.Duration) float64 {
	return e.RadioRxW * airtime.Seconds()
}

// IdleJ returns the baseline energy while waiting the given time.
func (e EnergyModel) IdleJ(wait time.Duration) float64 {
	return e.IdleW * wait.Seconds()
}

// InferenceEnergy is one recognition's device-side energy breakdown.
type InferenceEnergy struct {
	ComputeJ float64
	RadioJ   float64
	IdleJ    float64
}

// TotalJ sums the components.
func (ie InferenceEnergy) TotalJ() float64 { return ie.ComputeJ + ie.RadioJ + ie.IdleJ }
