// Package netsim models the wireless link between the mobile web browser
// and the edge server. Transfer time decomposes exactly as the paper's
// communication-cost experiments do: payload bits over the direction's
// bandwidth plus half the round-trip time, with optional multiplicative
// jitter for the fluctuation the paper attributes to unstable wireless
// links (Figure 6).
package netsim

import (
	"fmt"
	"time"

	"lcrs/internal/tensor"
)

// Link is a bidirectional network link profile.
type Link struct {
	// Name identifies the profile ("4g", "wifi", ...).
	Name string
	// DownMbps and UpMbps are the usable bandwidths in megabits/second.
	DownMbps, UpMbps float64
	// RTT is the round-trip time.
	RTT time.Duration
	// Jitter is the maximum fraction by which a sampled transfer deviates
	// from its expectation (0 disables jitter).
	Jitter float64

	rng *tensor.RNG
}

// FourG is the paper's evaluation setting: 10 Mb/s down, 3 Mb/s up.
func FourG() *Link {
	return &Link{Name: "4g", DownMbps: 10, UpMbps: 3, RTT: 40 * time.Millisecond, Jitter: 0.15, rng: tensor.NewRNG(40)}
}

// PaperFourG reconstructs the paper's Table II/III arithmetic: its
// mobile-only communication costs equal model megabytes divided by 10,
// which means the stated "10 Mb/s down / 3 Mb/s up" behaved as
// megaBYTES/s in their accounting (e.g. AlexNet 90.9 MB -> 9104 ms). Use
// this profile to regenerate the paper's absolute numbers; use FourG for a
// literal reading of the stated bandwidths.
func PaperFourG() *Link {
	return &Link{Name: "paper-4g", DownMbps: 80, UpMbps: 24, RTT: 40 * time.Millisecond, Jitter: 0.15, rng: tensor.NewRNG(40)}
}

// WiFi is an optimistic indoor profile.
func WiFi() *Link {
	return &Link{Name: "wifi", DownMbps: 50, UpMbps: 25, RTT: 8 * time.Millisecond, Jitter: 0.05, rng: tensor.NewRNG(41)}
}

// ThreeG is a pessimistic mobile profile.
func ThreeG() *Link {
	return &Link{Name: "3g", DownMbps: 2, UpMbps: 0.5, RTT: 150 * time.Millisecond, Jitter: 0.25, rng: tensor.NewRNG(42)}
}

// Seed re-seeds the jitter source so experiment runs are reproducible.
func (l *Link) Seed(seed int64) { l.rng = tensor.NewRNG(seed) }

func transferTime(bytes int64, mbps float64, rtt time.Duration) time.Duration {
	if mbps <= 0 {
		panic(fmt.Sprintf("netsim: non-positive bandwidth %v", mbps))
	}
	if bytes < 0 {
		panic(fmt.Sprintf("netsim: negative payload %d", bytes))
	}
	secs := float64(bytes*8) / (mbps * 1e6)
	return time.Duration(secs*float64(time.Second)) + rtt/2
}

// DownTime returns the expected time to move bytes from edge to browser.
func (l *Link) DownTime(bytes int64) time.Duration { return transferTime(bytes, l.DownMbps, l.RTT) }

// UpTime returns the expected time to move bytes from browser to edge.
func (l *Link) UpTime(bytes int64) time.Duration { return transferTime(bytes, l.UpMbps, l.RTT) }

// jittered scales d by a deterministic pseudo-random factor in
// [1-Jitter, 1+Jitter].
func (l *Link) jittered(d time.Duration) time.Duration {
	if l.Jitter == 0 || l.rng == nil {
		return d
	}
	f := 1 + l.Jitter*(2*l.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// SampleDownTime returns a jittered downlink transfer time.
func (l *Link) SampleDownTime(bytes int64) time.Duration { return l.jittered(l.DownTime(bytes)) }

// SampleUpTime returns a jittered uplink transfer time.
func (l *Link) SampleUpTime(bytes int64) time.Duration { return l.jittered(l.UpTime(bytes)) }
