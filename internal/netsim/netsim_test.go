package netsim

import (
	"testing"
	"time"
)

func TestTransferTimeFormula(t *testing.T) {
	l := &Link{Name: "t", DownMbps: 10, UpMbps: 5, RTT: 40 * time.Millisecond}
	// 1.25 MB = 10 Mb -> 1s at 10 Mb/s, plus RTT/2.
	got := l.DownTime(1_250_000)
	want := time.Second + 20*time.Millisecond
	if got != want {
		t.Fatalf("DownTime = %v, want %v", got, want)
	}
	// Uplink at half the bandwidth takes twice the serialization time.
	up := l.UpTime(1_250_000)
	if up != 2*time.Second+20*time.Millisecond {
		t.Fatalf("UpTime = %v", up)
	}
}

func TestZeroPayloadCostsHalfRTT(t *testing.T) {
	l := FourG()
	if got := l.DownTime(0); got != l.RTT/2 {
		t.Fatalf("zero payload = %v, want RTT/2 = %v", got, l.RTT/2)
	}
}

func TestNegativePayloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative payload did not panic")
		}
	}()
	FourG().UpTime(-1)
}

func TestProfilesAsymmetry(t *testing.T) {
	for _, l := range []*Link{FourG(), WiFi(), ThreeG()} {
		if l.UpMbps > l.DownMbps {
			t.Errorf("%s: uplink faster than downlink", l.Name)
		}
		if l.RTT <= 0 {
			t.Errorf("%s: non-positive RTT", l.Name)
		}
	}
	if FourG().DownMbps != 10 || FourG().UpMbps != 3 {
		t.Error("4G profile must match the paper's 10/3 Mb/s setting")
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	l := FourG()
	l.Seed(7)
	base := l.DownTime(100_000)
	var samples []time.Duration
	for i := 0; i < 50; i++ {
		s := l.SampleDownTime(100_000)
		lo := time.Duration(float64(base) * (1 - l.Jitter - 1e-9))
		hi := time.Duration(float64(base) * (1 + l.Jitter + 1e-9))
		if s < lo || s > hi {
			t.Fatalf("sample %v outside [%v, %v]", s, lo, hi)
		}
		samples = append(samples, s)
	}
	// Same seed reproduces the sequence.
	l.Seed(7)
	for i := 0; i < 50; i++ {
		if got := l.SampleDownTime(100_000); got != samples[i] {
			t.Fatal("jitter is not reproducible from the seed")
		}
	}
	// Jitter actually varies.
	allSame := true
	for _, s := range samples[1:] {
		if s != samples[0] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Fatal("jitter produced constant samples")
	}
}

func TestNoJitterLinkIsStable(t *testing.T) {
	l := &Link{Name: "stable", DownMbps: 10, UpMbps: 10, RTT: 10 * time.Millisecond}
	if l.SampleDownTime(1000) != l.DownTime(1000) {
		t.Fatal("zero-jitter link must be deterministic")
	}
}
