// Web AR case study (Figures 8-10): the full topology over a real HTTP
// loopback. An edge server hosts a ResNet18 composite trained on the
// augmented brand-logo dataset (the China Mobile / FenJiu stand-in); a web
// client downloads the browser bundle, scans logos, answers confident ones
// from the binary branch (LCRS-B) and collaborates with the edge for the
// rest (LCRS-M).
//
//	go run ./examples/webar
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"lcrs"
)

func main() {
	log.SetFlags(0)

	// Train the recognizer on augmented logos (rotation, translation,
	// zoom, flips, colour perturbation — the paper's pipeline).
	logos := lcrs.GenerateLogoDataset(800, 1)
	train, test := logos.Split(0.8)
	cfg := lcrs.ModelConfig{Classes: logos.Classes, InC: 3, InH: 32, InW: 32, WidthScale: 0.15, Seed: 1}
	model, err := lcrs.Build("resnet18", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training resnet18 on %d augmented logo samples (%d brands)...\n", train.Len(), logos.Classes)
	opts := lcrs.DefaultTrainOptions()
	opts.Epochs = 12
	res, err := lcrs.Train(model, train, test, opts)
	if err != nil {
		log.Fatal(err)
	}
	ev := lcrs.Evaluate(model, test, 32)
	tau, st := lcrs.ScreenThresholdAccuracyPreserving(ev)
	fmt.Printf("main acc %.1f%%, binary acc %.1f%%, tau %.4f (exit rate %.0f%%)\n\n",
		res.MainAcc*100, res.BinaryAcc*100, tau, st.ExitRate*100)

	// Edge server on a loopback listener (Figure 8's topology).
	server := lcrs.NewEdgeServer()
	if _, err := server.Register("webar", model); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: server.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("edge server listening at %s\n", base)

	// The mobile web browser: download the bundle, then scan.
	ctx := context.Background()
	browser := lcrs.NewWebClient(base)
	if err := browser.LoadModel(ctx, "webar", "resnet18", cfg, tau); err != nil {
		log.Fatal(err)
	}
	loadTime, loadBytes := browser.LoadStats()
	fmt.Printf("browser loaded bundle: %d bytes in %v\n\n", loadBytes, loadTime.Round(time.Millisecond))

	var binLat, edgeLat time.Duration
	var bins, edges, correct int
	n := 24
	for i := 0; i < n; i++ {
		x, brand := test.Sample(i)
		r, err := browser.Recognize(ctx, x)
		if err != nil {
			log.Fatal(err)
		}
		if r.Pred == brand {
			correct++
		}
		if r.Exited {
			bins++
			binLat += r.ClientTime
			fmt.Printf("scan %2d: brand %d -> %d  LCRS-B %8v\n", i, brand, r.Pred,
				r.ClientTime.Round(time.Microsecond))
		} else {
			edges++
			edgeLat += r.ClientTime + r.EdgeTime
			fmt.Printf("scan %2d: brand %d -> %d  LCRS-M %8v (edge %v)\n", i, brand, r.Pred,
				(r.ClientTime + r.EdgeTime).Round(time.Microsecond),
				r.EdgeTime.Round(time.Microsecond))
		}
	}

	fmt.Printf("\n%d scans: accuracy %.0f%%, %d via LCRS-B, %d via LCRS-M\n",
		n, float64(correct)/float64(n)*100, bins, edges)
	if bins > 0 {
		fmt.Printf("avg LCRS-B latency %v\n", (binLat / time.Duration(bins)).Round(time.Microsecond))
	}
	if edges > 0 {
		fmt.Printf("avg LCRS-M latency %v\n", (edgeLat / time.Duration(edges)).Round(time.Microsecond))
	}
}
