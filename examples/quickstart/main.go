// Quickstart: train a small LCRS composite on the synthetic MNIST stand-in,
// screen the entropy exit threshold, and run collaborative inference
// (Algorithm 2) under the paper's 4G cost model — all in-process.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"lcrs"
)

func main() {
	log.SetFlags(0)

	// 1. Build the composite model: shared conv1, full-precision main
	// branch, binary branch. WidthScale 0.15 keeps CPU training quick;
	// WidthScale 1 builds the paper-size network.
	cfg := lcrs.ModelConfig{Classes: 10, InC: 1, InH: 28, InW: 28, WidthScale: 0.15, Seed: 1}
	model, err := lcrs.Build("lenet", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built lenet: main %.2f MB, browser bundle %.3f MB (%.0fx smaller)\n",
		float64(model.MainSizeBytes())/(1<<20),
		float64(model.BinarySizeBytes())/(1<<20),
		float64(model.MainSizeBytes())/float64(model.BinarySizeBytes()))

	// 2. Generate data and train both branches jointly (Algorithm 1).
	full, err := lcrs.GenerateDataset("mnist", 800, 2)
	if err != nil {
		log.Fatal(err)
	}
	train, test := full.Split(0.8)
	opts := lcrs.DefaultTrainOptions()
	opts.Epochs = 10
	opts.Log = os.Stdout
	res, err := lcrs.Train(model, train, test, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrained: main acc %.1f%%, binary acc %.1f%%\n", res.MainAcc*100, res.BinaryAcc*100)

	// 3. Screen the exit threshold (Eq. 7 + BranchyNet-style screening).
	ev := lcrs.Evaluate(model, test, 32)
	tau, st := lcrs.ScreenThresholdAccuracyPreserving(ev)
	fmt.Printf("screened tau %.4f: exit rate %.0f%%, combined acc %.1f%%\n",
		tau, st.ExitRate*100, st.CombinedAccuracy*100)

	// 4. Collaborative inference under the calibrated 4G cost model.
	rt, err := lcrs.NewRuntime(model, tau, lcrs.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	session, err := rt.RunSession(test, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsession of %d samples over 4G:\n", session.N)
	fmt.Printf("  model load (once)   %8v\n", session.ModelLoad.Round(time.Millisecond))
	fmt.Printf("  avg total latency   %8v\n", session.AvgTotal.Round(time.Millisecond))
	fmt.Printf("  avg communication   %8v\n", session.AvgComm.Round(time.Millisecond))
	fmt.Printf("  exit rate           %7.0f%%\n", session.ExitRate*100)
	fmt.Printf("  end-to-end accuracy %7.1f%%\n", session.Accuracy*100)

	// 5. Inspect one sample's journey.
	x, label := test.Sample(0)
	rec := rt.Infer(x)
	path := "edge collaboration (LCRS-M)"
	if rec.Exited {
		path = "binary branch exit (LCRS-B)"
	}
	fmt.Printf("\nsample 0 (label %d): pred %d via %s, entropy %.4f, latency %v\n",
		label, rec.Pred, path, rec.Entropy, rec.Total().Round(time.Microsecond))
}
