// Latency sweep (Figure 6 flavour): run collaborative-inference sessions
// across link profiles (3G / 4G / WiFi) and growing sample counts, showing
// how exit rate keeps the average stable while model-load amortization and
// jitter move it.
//
//	go run ./examples/latency-sweep
package main

import (
	"fmt"
	"log"
	"time"

	"lcrs"
)

func main() {
	log.SetFlags(0)

	cfg := lcrs.ModelConfig{Classes: 10, InC: 3, InH: 32, InW: 32, WidthScale: 0.12, Seed: 1}
	model, err := lcrs.Build("alexnet", cfg)
	if err != nil {
		log.Fatal(err)
	}
	full, err := lcrs.GenerateDataset("cifar10", 700, 2)
	if err != nil {
		log.Fatal(err)
	}
	train, test := full.Split(0.8)
	opts := lcrs.DefaultTrainOptions()
	opts.Epochs = 8
	res, err := lcrs.Train(model, train, test, opts)
	if err != nil {
		log.Fatal(err)
	}
	ev := lcrs.Evaluate(model, test, 32)
	tau, _ := lcrs.ScreenThresholdAccuracyPreserving(ev)
	fmt.Printf("alexnet on cifar10: main %.1f%%, binary %.1f%%, tau %.4f\n\n",
		res.MainAcc*100, res.BinaryAcc*100, tau)

	links := []*lcrs.Link{lcrs.ThreeGLink(), lcrs.FourGLink(), lcrs.WiFiLink()}
	counts := []int{10, 25, 50, 100}

	fmt.Printf("%-6s", "link")
	for _, n := range counts {
		fmt.Printf("  n=%-9d", n)
	}
	fmt.Println("exit%")
	for _, link := range links {
		link.Seed(1)
		cost := lcrs.CostModel{
			Client: lcrs.MobileBrowserProfile(),
			Server: lcrs.EdgeServerProfile(),
			Link:   link,
		}
		rt, err := lcrs.NewRuntime(model, tau, cost)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s", link.Name)
		var lastExit float64
		for _, n := range counts {
			if n > test.Len() {
				n = test.Len()
			}
			st, err := rt.RunSession(test, n)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-11v", st.AvgTotal.Round(100*time.Microsecond))
			lastExit = st.ExitRate
		}
		fmt.Printf("%.0f%%\n", lastExit*100)
	}
	fmt.Println("\nColumns are session-average end-to-end latency (model load amortized over the session).")
}
