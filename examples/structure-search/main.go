// Structure search (Figure 4): sweep the binary branch's architecture on
// the AlexNet main branch — more binary conv layers vs more binary FC
// layers — and report accuracy against deployed size, reproducing the
// paper's finding that extra binary convolutions cost accuracy faster than
// extra binary FC layers.
//
//	go run ./examples/structure-search
package main

import (
	"fmt"
	"log"

	"lcrs"
)

func main() {
	log.SetFlags(0)

	full, err := lcrs.GenerateDataset("cifar10", 600, 2)
	if err != nil {
		log.Fatal(err)
	}
	train, test := full.Split(0.8)
	cfg := lcrs.ModelConfig{Classes: 10, InC: 3, InH: 32, InW: 32, WidthScale: 0.12, Seed: 1}

	evaluate := func(shape lcrs.BranchShape) (accPct, sizeMB float64) {
		m, err := lcrs.BuildWithBranch(cfg, shape)
		if err != nil {
			log.Fatal(err)
		}
		opts := lcrs.DefaultTrainOptions()
		opts.Epochs = 8
		res, err := lcrs.Train(m, train, test, opts)
		if err != nil {
			log.Fatal(err)
		}
		fullCfg := cfg
		fullCfg.WidthScale = 1
		ref, err := lcrs.BuildWithBranch(fullCfg, shape)
		if err != nil {
			log.Fatal(err)
		}
		return res.BinaryAcc * 100, float64(ref.BinarySizeBytes()) / (1 << 20)
	}

	fmt.Println("Figure 4(a): varying binary conv layers (1 binary FC)")
	fmt.Printf("%-16s %-10s %s\n", "structure", "B_Acc(%)", "B_size(MB, full scale)")
	for n := 1; n <= 4; n++ {
		acc, size := evaluate(lcrs.BranchShape{NBinaryConv: n, NBinaryFC: 1})
		fmt.Printf("%d conv + 1 fc    %-10.1f %.3f\n", n, acc, size)
	}

	fmt.Println("\nFigure 4(b): varying binary FC layers (1 binary conv)")
	fmt.Printf("%-16s %-10s %s\n", "structure", "B_Acc(%)", "B_size(MB, full scale)")
	for n := 1; n <= 3; n++ {
		acc, size := evaluate(lcrs.BranchShape{NBinaryConv: 1, NBinaryFC: n})
		fmt.Printf("1 conv + %d fc    %-10.1f %.3f\n", n, acc, size)
	}
}
