package lcrs

import (
	"bytes"
	"net/http/httptest"
	"testing"
)

// TestPublicAPIEndToEnd exercises the whole facade: build, train, screen,
// save/load, collaborative inference, and the HTTP edge/client pair.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := ModelConfig{Classes: 10, InC: 1, InH: 28, InW: 28, WidthScale: 0.12, Seed: 1}
	m, err := Build("lenet", cfg)
	if err != nil {
		t.Fatal(err)
	}

	full, err := GenerateDataset("mnist", 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	train, test := full.Split(0.8)

	opts := DefaultTrainOptions()
	opts.Epochs = 8
	res, err := Train(m, train, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.MainAcc < 0.6 || res.BinaryAcc < 0.5 {
		t.Fatalf("training underperformed: main=%.3f binary=%.3f", res.MainAcc, res.BinaryAcc)
	}

	ev := Evaluate(m, test, 32)
	tau, st := ScreenThreshold(ev, res.BinaryAcc)
	if st.ExitRate <= 0 {
		t.Fatalf("screening found no exits: %+v", st)
	}
	// The accuracy-preserving criterion: whatever exits must be at least as
	// accurate as the stronger branch overall.
	if _, ps := ScreenThresholdAccuracyPreserving(ev); ps.ExitRate > 0 {
		floor := res.MainAcc
		if res.BinaryAcc > floor {
			floor = res.BinaryAcc
		}
		if ps.ExitAccuracy+1e-9 < floor {
			t.Fatalf("preserving screening exit accuracy %+v below branch floor %.3f", ps, floor)
		}
	}

	// Checkpoint round trip through the facade.
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Build("lenet", ModelConfig{Classes: 10, InC: 1, InH: 28, InW: 28, WidthScale: 0.12, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadModel(&buf, m2); err != nil {
		t.Fatal(err)
	}

	// Collaborative inference with the calibrated cost model.
	rt, err := NewRuntime(m2, tau, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := rt.RunSession(test, 40)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accuracy < res.BinaryAcc-0.05 {
		t.Fatalf("collaborative accuracy %.3f below binary accuracy %.3f", stats.Accuracy, res.BinaryAcc)
	}
	if stats.AvgTotal <= 0 || stats.ModelLoad <= 0 {
		t.Fatalf("latency accounting broken: %+v", stats)
	}

	// HTTP topology: edge server + web client.
	srv := NewEdgeServer()
	if _, err := srv.Register("demo", m2); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	wc := NewWebClient(hs.URL)
	ctx := t.Context()
	if err := wc.LoadModel(ctx, "demo", "lenet", cfg, tau); err != nil {
		t.Fatal(err)
	}
	x, _ := test.Sample(0)
	out, err := wc.Recognize(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Pred < 0 || out.Pred >= 10 {
		t.Fatalf("prediction out of range: %d", out.Pred)
	}
}

func TestArchitecturesAndDatasets(t *testing.T) {
	if got := Architectures(); len(got) != 4 {
		t.Fatalf("Architectures = %v", got)
	}
	if got := DatasetNames(); len(got) != 4 || got[0] != "mnist" {
		t.Fatalf("DatasetNames = %v", got)
	}
}

func TestBuildWithBranch(t *testing.T) {
	cfg := ModelConfig{Classes: 10, InC: 3, InH: 32, InW: 32, WidthScale: 0.08, Seed: 1}
	m, err := BuildWithBranch(cfg, BranchShape{NBinaryConv: 2, NBinaryFC: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "alexnet" {
		t.Fatalf("arch = %s", m.Name)
	}
}

func TestBrowserBundleFacade(t *testing.T) {
	cfg := ModelConfig{Classes: 10, InC: 1, InH: 28, InW: 28, WidthScale: 0.08, Seed: 1}
	m, err := Build("lenet", cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeBrowserBundle(m)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	m2, err := Build("lenet", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeBrowserBundle(data, m2); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateLogoDataset(t *testing.T) {
	d := GenerateLogoDataset(32, 1)
	if d.Len() != 32 || d.Classes <= 1 {
		t.Fatalf("logo dataset: %d samples, %d classes", d.Len(), d.Classes)
	}
}
