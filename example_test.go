package lcrs_test

import (
	"fmt"

	"lcrs"
)

// Building a composite model and inspecting the size asymmetry between the
// edge-side main branch and the browser-side binary bundle.
func ExampleBuild() {
	cfg := lcrs.ModelConfig{Classes: 10, InC: 3, InH: 32, InW: 32, WidthScale: 1, Seed: 1}
	m, err := lcrs.Build("resnet18", cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("main branch: %.1f MB\n", float64(m.MainSizeBytes())/(1<<20))
	fmt.Printf("browser bundle: %.1f MB\n", float64(m.BinarySizeBytes())/(1<<20))
	fmt.Printf("compression: %.0fx\n", float64(m.MainSizeBytes())/float64(m.BinarySizeBytes()))
	// Output:
	// main branch: 42.7 MB
	// browser bundle: 1.5 MB
	// compression: 28x
}

// The synthetic benchmark datasets mirror the paper's shapes and class
// counts, ordered by difficulty.
func ExampleGenerateDataset() {
	for _, name := range lcrs.DatasetNames() {
		ds, err := lcrs.GenerateDataset(name, 10, 1)
		if err != nil {
			panic(err)
		}
		shape := ds.SampleShape()
		fmt.Printf("%s: %d classes, %dx%dx%d\n", name, ds.Classes, shape[0], shape[1], shape[2])
	}
	// Output:
	// mnist: 10 classes, 1x28x28
	// fashion: 10 classes, 1x28x28
	// cifar10: 10 classes, 3x32x32
	// cifar100: 100 classes, 3x32x32
}

// Packing a binary branch produces the bit-level executor the web client
// runs; its footprint is a fraction of the float parameters.
func ExamplePackBinaryBranch() {
	cfg := lcrs.ModelConfig{Classes: 10, InC: 1, InH: 28, InW: 28, WidthScale: 0.25, Seed: 1}
	m, err := lcrs.Build("lenet", cfg)
	if err != nil {
		panic(err)
	}
	pb := lcrs.PackBinaryBranch(m)
	fmt.Println(pb.Stages() > 0, pb.SizeBytes() < m.MainSizeBytes())
	// Output:
	// true true
}

// The cost model decomposes a 4G link the way the paper's communication
// tables do: payload over bandwidth plus half an RTT.
func ExampleFourGLink() {
	link := lcrs.FourGLink()
	fmt.Println(link.DownTime(1_250_000)) // 10 Mb at 10 Mb/s + RTT/2
	// Output:
	// 1.02s
}
